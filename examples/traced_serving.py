"""End-to-end tracing quickstart: one span timeline from request to kernel.

A :class:`~repro.obs.Tracer` shared by the serving scheduler and the
engines under it records every layer of one run — request lanes
(admission, queue wait, batch wait, execute), device micro-batch lanes,
the engine's stratum/iteration/variant tree, and (opt-in) individual
kernel spans — all on the *modeled* clocks.  No host wall time enters a
span, so the same seed prints this report and exports byte-identical
Perfetto JSON on every machine, every run.

The script serves a short transitive-closure stream, prints the
aggregated profile, joins the adaptive planner's estimates onto the
observed per-rule span times (``explain_run``), and writes a Chrome
trace-event file you can open at https://ui.perfetto.dev.

Usage::

    python examples/traced_serving.py [trace-output.json]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import (
    LoadGenerator,
    LobsterEngine,
    ProgramCache,
    Scheduler,
    SLOClass,
    Tracer,
)
from repro.obs import explain_run, export_perfetto, profile, validate_trace_events
from repro.workloads.analytics import TRANSITIVE_CLOSURE

TINY = bool(os.environ.get("LOBSTER_OBS_TINY"))
N_REQUESTS = 12 if TINY else 40
SEED = 13


def make_database_factory(engine):
    def make_database(rng, index):
        n_nodes = 14
        pairs = rng.integers(0, n_nodes, size=(30, 2))
        edges = sorted({(int(a), int(b)) for a, b in pairs if a != b})
        db = engine.create_database()
        db.add_facts("edge", edges, probs=[0.9] * len(edges))
        return db

    return make_database


def serve_traced(tracer: Tracer):
    engine = LobsterEngine(
        TRANSITIVE_CLOSURE, provenance="minmaxprob", cache=ProgramCache()
    )
    classes = {
        "interactive": SLOClass(
            "interactive", deadline_s=0.05, max_batch_delay_s=0.0005,
            max_batch_size=4, queue_limit=64, priority=0,
        ),
    }
    generator = LoadGenerator(
        engine,
        make_database_factory(engine),
        rate_hz=2000.0,
        n_requests=N_REQUESTS,
        seed=SEED,
    )
    scheduler = Scheduler(n_devices=2, classes=classes, tracer=tracer)
    return scheduler.run(generator.generate())


def main() -> None:
    tracer = Tracer(seed=SEED)
    report = serve_traced(tracer)
    print(
        f"served {report.completed}/{report.submitted} requests over "
        f"{report.makespan_s * 1e3:.3f} modeled ms; "
        f"{len(tracer.spans)} spans collected\n"
    )

    # 1. The aggregated profile: where did the modeled time go?
    print(profile(tracer, title="traced serving profile"))

    # 2. Per-request accounting: the span children of one request lane
    # sum to exactly its reported latency — no dark time.
    outcome = report.outcomes[0]
    lane = next(
        s for s in tracer.spans
        if s.name == "serve.request" and s.attrs["ticket"] == outcome.ticket
    )
    children = [
        s for s in tracer.spans
        if s.parent_id == lane.span_id and s.kind != "instant"
    ]
    accounted = sum(s.duration_s for s in children)
    print(f"\nrequest #{outcome.ticket} latency accounting:")
    for span in children:
        print(f"  {span.name:<16} {span.duration_s * 1e6:>9.3f} us")
    print(f"  {'total':<16} {accounted * 1e6:>9.3f} us "
          f"(reported latency {outcome.latency_s * 1e6:.3f} us)")
    assert abs(accounted - outcome.latency_s) <= 1e-12

    # 3. Plan-vs-observed: an adaptive engine's estimates joined onto
    # the rule spans its run actually produced.
    xtracer = Tracer(seed=SEED)
    adaptive = LobsterEngine(
        TRANSITIVE_CLOSURE,
        provenance="minmaxprob",
        cache=ProgramCache(),
        adaptive=True,
        tracing=xtracer,
    )
    db = adaptive.create_database()
    db.add_facts("edge", [(i, i + 1) for i in range(8)] + [(0, 4), (2, 7)],
                 probs=[0.9] * 10)
    result = adaptive.run(db)
    print("\n" + explain_run(result, xtracer))

    # 4. Perfetto export — open the file at https://ui.perfetto.dev.
    path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.mkdtemp(prefix="lobster-trace-"), "trace.json"
    )
    obj = export_perfetto(tracer.spans, path)
    n_events = validate_trace_events(obj)
    print(f"\nwrote {n_events} trace events to {path}")


if __name__ == "__main__":
    main()

"""RAM: the mid-level relational algebra IR and the Datalog lowering."""

from . import exprs, ir
from .compile_datalog import compile_program
from .planner import order_atoms

__all__ = ["compile_program", "exprs", "ir", "order_atoms"]

#!/usr/bin/env python3
"""Run every ``bench_*`` file and write a versioned markdown summary.

Replaces the old hand-edited ``results.txt`` workflow: each invocation
runs the full benchmark suite (optionally several trials with warmups),
collects per-file wall times, and writes a timestamped markdown report
to ``benchmarks/results/`` — date, Python version, library version, and
mean ± stddev per benchmark — so runs on different machines or commits
can be diffed instead of overwritten.

Usage::

    python benchmarks/run_all.py                   # one trial, no warmup
    python benchmarks/run_all.py --trials 3 --warmups 1
    python benchmarks/run_all.py --filter scaleout # only matching files

Benchmarks are executed through pytest one file at a time (they are
pytest modules — module fixtures hold the heavy measurements), with
``--benchmark-disable`` so pytest-benchmark's own repetition machinery
stays out of the timing loop.
"""

from __future__ import annotations

import argparse
import datetime
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"


def read_version() -> str:
    # Same anchored parse as setup.py, so the two can never disagree on
    # what counts as the version line.
    import re

    init = REPO_ROOT / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__\s*=\s*"([^"]+)"', init.read_text(), re.M)
    return match.group(1) if match else "unknown"


def bench_files(pattern: str | None) -> list[Path]:
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if pattern:
        files = [path for path in files if pattern in path.name]
    return files


def run_once(path: Path, env: dict) -> tuple[float, bool]:
    """One timed pytest run of a benchmark file; returns (seconds, ok).
    Failure output is surfaced so a FAIL row is diagnosable."""
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(path),
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(f"--- {path.name} failed (exit {proc.returncode}) ---", file=sys.stderr)
        print(proc.stdout[-4000:], file=sys.stderr)
        print(proc.stderr[-2000:], file=sys.stderr)
    return time.perf_counter() - start, proc.returncode == 0


def summarize(times: list[float]) -> str:
    mean = statistics.mean(times)
    stddev = statistics.stdev(times) if len(times) > 1 else 0.0
    return f"{mean:.2f}s ± {stddev:.2f}s"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=1, help="timed runs per file")
    parser.add_argument("--warmups", type=int, default=0, help="untimed runs first")
    parser.add_argument("--filter", default=None, help="substring filter on file names")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help=(
            "set LOBSTER_SCALEOUT_TINY=1, LOBSTER_SERVE_TINY=1, "
            "LOBSTER_STREAM_TINY=1, LOBSTER_PLANNER_TINY=1, "
            "LOBSTER_RECOVERY_TINY=1, LOBSTER_JIT_TINY=1, and "
            "LOBSTER_OBS_TINY=1 (CI smoke sizes)"
        ),
    )
    args = parser.parse_args()

    files = bench_files(args.filter)
    if not files:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if args.tiny:
        env["LOBSTER_SCALEOUT_TINY"] = "1"
        env["LOBSTER_SERVE_TINY"] = "1"
        env["LOBSTER_STREAM_TINY"] = "1"
        env["LOBSTER_PLANNER_TINY"] = "1"
        env["LOBSTER_RECOVERY_TINY"] = "1"
        env["LOBSTER_JIT_TINY"] = "1"
        env["LOBSTER_OBS_TINY"] = "1"

    rows: list[tuple[str, str, str, int]] = []
    all_ok = True
    for path in files:
        print(f"== {path.name} ({args.warmups} warmup, {args.trials} trial(s))")
        for _ in range(args.warmups):
            run_once(path, env)
        times: list[float] = []
        ok = True
        for _ in range(max(args.trials, 1)):
            seconds, passed = run_once(path, env)
            times.append(seconds)
            ok = ok and passed
        all_ok = all_ok and ok
        status = "ok" if ok else "FAIL"
        rows.append((path.name, status, summarize(times), len(times)))
        print(f"   {status}: {summarize(times)}")

    stamp = datetime.datetime.now()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"summary-{stamp:%Y%m%d-%H%M%S}.md"
    lines = [
        f"# Benchmark summary — {stamp:%Y-%m-%d %H:%M:%S}",
        "",
        f"- lobster-repro version: `{read_version()}`",
        f"- Python: `{platform.python_version()}` on `{platform.platform()}`",
        f"- trials per file: {args.trials} (warmups: {args.warmups})",
        f"- mode: {'tiny (smoke sizes)' if args.tiny else 'full'}",
        "",
        "| benchmark | status | wall time (mean ± stddev) | trials |",
        "|---|---|---|---|",
    ]
    for name, status, summary, n in rows:
        lines.append(f"| `{name}` | {status} | {summary} | {n} |")
    lines.append("")
    lines.append(
        "Wall time is the end-to-end pytest run of the file; the modeled "
        "device metrics (simulated seconds, exchange bytes) are in the "
        "paper-shaped tables appended to `results/tables.txt`."
    )
    out.write_text("\n".join(lines) + "\n")
    print(f"\nwrote {out}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

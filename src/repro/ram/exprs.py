"""Row-level scalar expressions used by RAM's project (α) and select (β).

An expression tree evaluates against one row of a table.  Two backends:

* :func:`to_bytecode` — compiles to the device's stack bytecode (§5.2);
  each opcode then runs vectorized over whole columns.
* :func:`evaluate_row` — direct per-row evaluation for the CPU baseline
  engines (Scallop/Soufflé stand-ins), one tuple at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..gpu.bytecode import LOAD_COL, LOAD_CONST, BytecodeProgram, Instr

INT = np.dtype(np.int64)
FLOAT = np.dtype(np.float64)


@dataclass(frozen=True)
class Col:
    index: int


@dataclass(frozen=True)
class Const:
    value: object  # int | float


@dataclass(frozen=True)
class Binary:
    op: str  # + - * / % min max == != < <= > >= and or
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class Unary:
    op: str  # neg, not, abs
    operand: "Expr"


Expr = Union[Col, Const, Binary, Unary]

_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "%": "mod", "min": "min", "max": "max"}
_COMPARE_OPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_LOGIC_OPS = {"and": "and", "or": "or"}


def expr_dtype(expr: Expr, input_dtypes: tuple[np.dtype, ...]) -> np.dtype:
    """Static result dtype of an expression over the given input columns."""
    if isinstance(expr, Col):
        return input_dtypes[expr.index]
    if isinstance(expr, Const):
        return FLOAT if isinstance(expr.value, float) else INT
    if isinstance(expr, Unary):
        return expr_dtype(expr.operand, input_dtypes)
    if isinstance(expr, Binary):
        if expr.op in _COMPARE_OPS or expr.op in _LOGIC_OPS:
            return INT
        if expr.op == "/":
            return FLOAT
        lhs = expr_dtype(expr.lhs, input_dtypes)
        rhs = expr_dtype(expr.rhs, input_dtypes)
        return FLOAT if FLOAT in (lhs, rhs) else INT
    raise TypeError(f"unexpected expression {expr!r}")


def to_bytecode(expr: Expr, input_dtypes: tuple[np.dtype, ...]) -> BytecodeProgram:
    instrs: list[Instr] = []
    _emit(expr, input_dtypes, instrs)
    return BytecodeProgram(tuple(instrs))


def _emit(expr: Expr, dtypes: tuple[np.dtype, ...], out: list[Instr]) -> None:
    if isinstance(expr, Col):
        out.append(Instr(LOAD_COL, expr.index))
        return
    if isinstance(expr, Const):
        out.append(Instr(LOAD_CONST, expr.value))
        return
    if isinstance(expr, Unary):
        _emit(expr.operand, dtypes, out)
        out.append(Instr({"neg": "neg", "not": "not", "abs": "abs"}[expr.op]))
        return
    if isinstance(expr, Binary):
        _emit(expr.lhs, dtypes, out)
        _emit(expr.rhs, dtypes, out)
        if expr.op in _ARITH_OPS:
            out.append(Instr(_ARITH_OPS[expr.op]))
        elif expr.op in _COMPARE_OPS:
            out.append(Instr(_COMPARE_OPS[expr.op]))
        elif expr.op in _LOGIC_OPS:
            out.append(Instr(_LOGIC_OPS[expr.op]))
        elif expr.op == "/":
            # "/" is always true division and yields a float column,
            # matching expr_dtype's inference (HWF-style arithmetic).
            out.append(Instr("div"))
        else:
            raise ValueError(f"unknown operator {expr.op!r}")
        return
    raise TypeError(f"unexpected expression {expr!r}")


def evaluate_row(expr: Expr, row: tuple):
    """Per-tuple evaluation (CPU baseline path)."""
    if isinstance(expr, Col):
        return row[expr.index]
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Unary):
        value = evaluate_row(expr.operand, row)
        if expr.op == "neg":
            return -value
        if expr.op == "not":
            return not value
        return abs(value)
    if isinstance(expr, Binary):
        lhs = evaluate_row(expr.lhs, row)
        rhs = evaluate_row(expr.rhs, row)
        op = expr.op
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return lhs / rhs if rhs != 0 else float("inf")
        if op == "%":
            return lhs % rhs if rhs != 0 else 0
        if op == "min":
            return min(lhs, rhs)
        if op == "max":
            return max(lhs, rhs)
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "and":
            return bool(lhs) and bool(rhs)
        if op == "or":
            return bool(lhs) or bool(rhs)
        raise ValueError(f"unknown operator {op!r}")
    raise TypeError(f"unexpected expression {expr!r}")


def is_permutation(exprs: list[Expr]) -> bool:
    """True when a projection merely permutes/subsets columns — the fast
    columnar-copy path of §5.2 (no bytecode needed)."""
    return all(isinstance(e, Col) for e in exprs)

"""APM: the Abstract Parallel Machine IR, compiler, optimizer, interpreter."""

from . import instructions
from .compiler import ApmProgram, CompiledRule, CompiledStratum, Variant, compile_ram
from .interpreter import ApmInterpreter
from .optimizer import optimize
from .schedule import plan_transfers

__all__ = [
    "ApmInterpreter",
    "ApmProgram",
    "CompiledRule",
    "CompiledStratum",
    "Variant",
    "compile_ram",
    "instructions",
    "optimize",
    "plan_transfers",
]

"""Stored relations with semi-naive partitions (§3.4).

Each relation keeps one lexicographically *sorted* ``full`` table (every
fact with its current best tag) plus a boolean ``recent`` mask marking the
semi-naive frontier.  :meth:`StoredRelation.advance` folds an iteration's
delta facts in:

* the delta is sorted and deduplicated, combining duplicate tags with ⊕
  (the APM ``sort``/``unique⟨⊕⟩`` sequence of Appendix A's "Stratum" rule);
* the deduplicated delta is merged against ``full`` (the ``merge``
  instruction); a fact re-enters the frontier if it is brand new or its
  tag strictly improved (tag saturation).

Alongside the per-iteration ``recent`` frontier, each relation keeps a
``changed`` mask accumulating every row added or improved since
:meth:`StoredRelation.begin_delta_tracking`.  Incremental re-evaluation
zeroes the mask before folding new EDB facts in, then seeds its delta
variants from the ``delta`` partition (the changed rows) — including
changes produced by *earlier strata* of the same pass, which the
per-iteration ``recent`` mask has already forgotten by the time a later
stratum runs.
"""

from __future__ import annotations

import numpy as np

from .table import Table
from ..gpu import kernels
from ..provenance.base import Provenance
from ..stats.relation_stats import RelationStats


def dedup_table(delta: Table, provenance: Provenance) -> Table:
    """Sort + unique⟨⊕⟩ a delta table (the APM ``sort``/``unique⟨⊕⟩``
    sequence), standalone so callers outside a :class:`StoredRelation` —
    notably the sharded executor's owner-side merge — can share it."""
    if delta.arity == 0:
        if delta.n_rows == 0:
            return delta
        seg = np.zeros(delta.n_rows, dtype=np.int64)
        tags = provenance.oplus_reduce(delta.tags, seg, 1)
        return Table([], tags, 1)
    order = kernels.lex_rank(delta.columns)
    sorted_cols = [c[order] for c in delta.columns]
    sorted_tags = delta.tags[order]
    unique_cols, segment_ids, _ = kernels.unique_rows(sorted_cols)
    nseg = len(unique_cols[0]) if unique_cols else 0
    tags = provenance.oplus_reduce(sorted_tags, segment_ids, nseg)
    return Table(unique_cols, tags, nseg)


class RowLocator:
    """Membership lookups against one (lexicographically sorted) table.

    The over-delete phase of DRed-style maintenance repeatedly asks
    "which of these candidate rows exist in ``full``?" while ``full`` is
    guaranteed static.  Building the locator once per maintain pass makes
    each lookup a binary search over a packed 64-bit key column (the same
    radix-pack trick :func:`~repro.gpu.kernels.lex_rank` uses) instead of
    a fresh O((n+q) log) sort; tables whose rows cannot pack (floats,
    >63 bits) fall back to the concatenate-and-rank path per call.
    """

    def __init__(self, table: Table):
        self._table = table
        self._params: list[tuple[int, int]] | None = None  # (lo, bits) per col
        self._packed: np.ndarray | None = None
        if table.arity and table.n_rows and all(
            c.dtype.kind != "f" for c in table.columns
        ):
            params: list[tuple[int, int]] = []
            total_bits = 0
            for col in table.columns:
                lo, hi = int(col.min()), int(col.max())
                bits = max(hi - lo, 1).bit_length()
                total_bits += bits
                params.append((lo, bits))
            if total_bits <= 63:
                self._params = params
                self._packed = self._pack(table.columns)[0]

    def _pack(self, columns) -> tuple[np.ndarray, np.ndarray]:
        """Pack query columns with the table's offsets/widths; rows whose
        values fall outside the table's per-column range can never match
        and are reported through the validity mask."""
        assert self._params is not None
        n = len(columns[0])
        packed = np.zeros(n, dtype=np.uint64)
        valid = np.ones(n, dtype=bool)
        for col, (lo, bits) in zip(columns, self._params):
            col = np.asarray(col).astype(np.int64)
            valid &= (col >= lo) & (col - lo < (1 << bits))
            shifted = np.clip(col - lo, 0, (1 << bits) - 1).astype(np.uint64)
            packed = (packed << np.uint64(bits)) | shifted
        return packed, valid

    def contains(self, columns, n_query: int | None = None) -> np.ndarray:
        """Boolean mask over the *query* rows present in the table (the
        opposite direction of :meth:`member_mask`).  ``n_query`` must be
        passed for arity-0 queries (no columns to measure)."""
        table = self._table
        if n_query is None:
            n_query = len(columns[0]) if columns else 0
        if table.arity == 0:
            # Every arity-0 query row is the empty tuple, present iff the
            # table is nonempty.
            return np.full(n_query, table.n_rows > 0, dtype=bool)
        if table.n_rows == 0 or n_query == 0:
            return np.zeros(n_query, dtype=bool)
        if self._packed is not None:
            query, valid = self._pack(columns)
            idx = np.searchsorted(self._packed, query, side="left")
            in_range = idx < len(self._packed)
            hit = np.zeros(n_query, dtype=bool)
            hit[in_range] = self._packed[idx[in_range]] == query[in_range]
            return hit & valid
        origin, order, segment_ids = self._merged_groups(columns, n_query)
        nseg = int(segment_ids[-1]) + 1 if len(segment_ids) else 0
        seg_has_full = np.zeros(nseg, dtype=bool)
        seg_has_full[segment_ids[origin == 0]] = True
        hit = np.zeros(n_query, dtype=bool)
        query_positions = order[origin == 1] - table.n_rows
        hit[query_positions] = seg_has_full[segment_ids[origin == 1]]
        return hit

    def _merged_groups(
        self, columns, n_query: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The unpackable-rows fallback shared by :meth:`contains` and
        :meth:`member_mask`: merge-sort the table's rows with the query
        rows and group equal rows.  Returns ``(origin, order,
        segment_ids)`` in sorted position order, where ``origin`` is 0
        for table rows and 1 for query rows."""
        table = self._table
        combined = [
            np.concatenate([fc, np.asarray(qc).astype(fc.dtype)])
            for fc, qc in zip(table.columns, columns)
        ]
        origin = np.concatenate(
            [
                np.zeros(table.n_rows, dtype=np.int64),
                np.ones(n_query, dtype=np.int64),
            ]
        )
        order = kernels.lex_rank(combined + [origin])
        combined = [c[order] for c in combined]
        is_first = kernels.row_group_boundaries(combined)
        return origin[order], order, np.cumsum(is_first) - 1

    def member_mask(self, columns) -> np.ndarray:
        """Boolean mask over the *table's* rows hit by any query row."""
        table = self._table
        mask = np.zeros(table.n_rows, dtype=bool)
        n_query = len(columns[0]) if columns else 0
        if table.n_rows == 0:
            return mask
        if table.arity == 0:
            # All arity-0 rows are equal; any query row hits them all.
            mask[:] = True
            return mask
        if n_query == 0:
            return mask
        if self._packed is not None:
            query, valid = self._pack(columns)
            query = query[valid]
            idx = np.searchsorted(self._packed, query, side="left")
            in_range = idx < len(self._packed)
            hit = idx[in_range][self._packed[idx[in_range]] == query[in_range]]
            mask[hit] = True
            return mask
        origin, order, segment_ids = self._merged_groups(columns, n_query)
        nseg = int(segment_ids[-1]) + 1 if len(segment_ids) else 0
        seg_has_query = np.zeros(nseg, dtype=bool)
        seg_has_query[segment_ids[origin == 1]] = True
        full_positions = order[origin == 0]  # original indices into full
        mask[full_positions] = seg_has_query[segment_ids[origin == 0]]
        return mask


class StoredRelation:
    """One relation's persistent storage across fix-point iterations."""

    def __init__(self, name: str, dtypes: tuple[np.dtype, ...], provenance: Provenance):
        self.name = name
        self.dtypes = dtypes
        self.provenance = provenance
        self.full = Table.empty(dtypes, provenance)
        self.recent_mask = np.zeros(0, dtype=bool)
        self.changed_mask = np.zeros(0, dtype=bool)
        #: Opt-in planner statistics (:meth:`enable_stats`); None keeps
        #: the advance/retract hot paths entirely stats-free.
        self._stats: RelationStats | None = None

    # ------------------------------------------------------------------

    def enable_stats(self) -> RelationStats:
        """Turn on incremental statistics for this relation.

        The first call summarizes the current ``full`` table; from then
        on :meth:`advance` folds newly added rows in (exactly equal to a
        recompute — the sketches are insert-mergeable) and the retraction
        paths rebuild from the surviving table (min/max and distinct
        counts cannot shrink incrementally).  Returns the live object, so
        a :class:`~repro.stats.StatsCatalog` can hold it by reference and
        observe later mutations without re-snapshotting.
        """
        if self._stats is None:
            self._stats = RelationStats.from_table(self.full)
        return self._stats

    @property
    def stats(self) -> RelationStats | None:
        return self._stats

    @property
    def arity(self) -> int:
        return len(self.dtypes)

    def n_facts(self) -> int:
        return self.full.n_rows

    def n_recent(self) -> int:
        return int(self.recent_mask.sum())

    def nbytes(self) -> int:
        return self.full.nbytes() + self.recent_mask.nbytes

    def snapshot(self, part: str) -> Table:
        """Return the requested partition: ``full``, ``recent``,
        ``stable``, or ``delta`` (rows changed since tracking began)."""
        if part == "full":
            return self.full
        if part == "recent":
            return self.full.take(np.flatnonzero(self.recent_mask))
        if part == "stable":
            return self.full.take(np.flatnonzero(~self.recent_mask))
        if part == "delta":
            return self.full.take(np.flatnonzero(self.changed_mask))
        raise ValueError(f"unknown partition {part!r}")

    def mark_all_recent(self) -> None:
        self.recent_mask = np.ones(self.full.n_rows, dtype=bool)

    def clear_recent(self) -> None:
        self.recent_mask = np.zeros(self.full.n_rows, dtype=bool)

    def begin_delta_tracking(self) -> None:
        """Zero the ``changed`` mask; subsequent :meth:`advance` calls
        accumulate added/improved rows into it."""
        self.changed_mask = np.zeros(self.full.n_rows, dtype=bool)

    def n_changed(self) -> int:
        return int(self.changed_mask.sum())

    def seed_recent_from_changes(self) -> None:
        """Make the semi-naive frontier exactly the changed rows (the
        incremental-pass replacement for :meth:`mark_all_recent`)."""
        self.recent_mask = self.changed_mask.copy()

    def locator(self) -> RowLocator:
        """A fresh membership index over the current ``full`` table.
        Valid only while ``full`` is not mutated (the over-delete phase
        guarantees this: nothing is removed until dooming finishes)."""
        return RowLocator(self.full)

    def remove_rows(self, mask: np.ndarray) -> Table:
        """Physically remove the masked rows from ``full`` (the DRed
        over-delete step); returns the removed rows with their old tags
        so callers can surface them as retraction deltas.  ``full`` stays
        sorted (removal preserves order); the recent/changed masks are
        reset — the re-derive phase reseeds them."""
        removed = self.full.take(np.flatnonzero(mask))
        keep = np.flatnonzero(~mask)
        self.full = self.full.take(keep)
        self.recent_mask = np.zeros(self.full.n_rows, dtype=bool)
        self.changed_mask = np.zeros(self.full.n_rows, dtype=bool)
        if self._stats is not None:
            # Deletions rebuild: min/max and KMV minima cannot shrink
            # incrementally, and this path is already O(n).
            self._stats = RelationStats.from_table(self.full)
        return removed

    # ------------------------------------------------------------------

    def set_facts(self, table: Table) -> None:
        """Replace contents with ``table`` (EDB loading); dedups with ⊕."""
        self.full = Table.empty(self.dtypes, self.provenance)
        self.recent_mask = np.zeros(0, dtype=bool)
        self.changed_mask = np.zeros(0, dtype=bool)
        if self._stats is not None:
            self._stats = RelationStats(self.arity)  # advance() refills
        if table.n_rows:
            self.advance(table)
        self.mark_all_recent()

    def advance(self, delta: Table) -> int:
        """Fold delta facts in; returns the new frontier size.

        Previously recent facts become stable; delta facts that are new or
        whose tags improved become the frontier.
        """
        prov = self.provenance
        if len(self.changed_mask) != self.full.n_rows:
            self.changed_mask = np.zeros(self.full.n_rows, dtype=bool)
        if delta.n_rows == 0:
            self.clear_recent()
            return 0

        delta = self._dedup(delta)
        if delta.n_rows == 0:
            self.clear_recent()
            return 0

        if self.full.n_rows == 0:
            keep = ~prov.is_absorbing_zero(delta.tags)
            self.full = delta.take(np.flatnonzero(keep))
            self.recent_mask = np.ones(self.full.n_rows, dtype=bool)
            self.changed_mask = np.ones(self.full.n_rows, dtype=bool)
            if self._stats is not None:
                self._stats.observe_added(self.full.columns, self.full.n_rows)
            return self.full.n_rows

        # Merge sorted full with sorted delta; an origin column (0 = old,
        # 1 = new) is the least significant sort key so the existing fact
        # leads each duplicate group.
        n_old, n_new = self.full.n_rows, delta.n_rows
        combined_cols = [
            np.concatenate([self.full.columns[j], delta.columns[j]])
            for j in range(self.arity)
        ]
        origin = np.concatenate(
            [np.zeros(n_old, dtype=np.int64), np.ones(n_new, dtype=np.int64)]
        )
        combined_tags = np.concatenate([self.full.tags, delta.tags])
        order = kernels.lex_rank(combined_cols + [origin])
        combined_cols = [c[order] for c in combined_cols]
        origin = origin[order]
        combined_tags = combined_tags[order]

        if self.arity == 0:
            is_first = np.zeros(n_old + n_new, dtype=bool)
            if n_old + n_new:
                is_first[0] = True
        else:
            is_first = kernels.row_group_boundaries(combined_cols)
        segment_ids = np.cumsum(is_first) - 1
        nseg = int(segment_ids[-1]) + 1 if len(segment_ids) else 0
        firsts = np.flatnonzero(is_first)

        has_old = origin[firsts] == 0

        # Combine the new rows of each segment with ⊕.
        new_rows = np.flatnonzero(origin == 1)
        new_segments = segment_ids[new_rows]
        seg_has_new = np.zeros(nseg, dtype=bool)
        seg_has_new[new_segments] = True
        # Dense renumbering of segments that contain new rows.
        dense_of_seg = np.cumsum(seg_has_new) - 1
        combined_new = prov.oplus_reduce(
            combined_tags[new_rows], dense_of_seg[new_segments], int(seg_has_new.sum())
        )

        out_tags = combined_tags[firsts].copy()
        improved = ~has_old & seg_has_new  # brand-new facts
        both = has_old & seg_has_new
        if both.any():
            merged, tag_improved = prov.merge_existing(
                combined_tags[firsts[both]], combined_new[dense_of_seg[both]]
            )
            out_tags[both] = merged
            improved[both] = tag_improved
        pure_new = ~has_old
        if pure_new.any():
            out_tags[pure_new] = combined_new[dense_of_seg[pure_new]]

        # Drop brand-new facts whose tag is the absorbing zero.
        keep = np.ones(nseg, dtype=bool)
        zero = prov.is_absorbing_zero(out_tags)
        keep[pure_new & zero] = False

        # Carry each surviving old row's ``changed`` flag through the
        # merge (row positions shift as new facts interleave), then fold
        # this advance's improvements in.
        changed = np.zeros(nseg, dtype=bool)
        old_rows = order[firsts[has_old]]  # positions < n_old by sort order
        changed[has_old] = self.changed_mask[old_rows]
        changed |= improved

        kept = np.flatnonzero(keep)
        self.full = Table(
            [c[firsts[kept]] for c in combined_cols],
            out_tags[kept],
            len(kept),
        )
        self.recent_mask = improved[kept]
        self.changed_mask = changed[kept]
        if self._stats is not None:
            # Only brand-new surviving facts change the summarized row
            # set (tag improvements touch tags, not values), so folding
            # exactly those keeps the stats equal to a recompute.
            added = np.flatnonzero(pure_new & keep)
            if len(added):
                self._stats.observe_added(
                    [c[firsts[added]] for c in combined_cols], len(added)
                )
        return int(self.recent_mask.sum())

    # ------------------------------------------------------------------

    def _dedup(self, delta: Table) -> Table:
        """Sort + unique⟨⊕⟩ a delta table."""
        return dedup_table(delta, self.provenance)

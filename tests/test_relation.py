"""StoredRelation semi-naive partition / advance semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.provenance import create
from repro.runtime.relation import StoredRelation
from repro.runtime.table import Table

INT2 = (np.dtype(np.int64), np.dtype(np.int64))


def make_relation(provenance_name="unit", **kwargs):
    provenance = create(provenance_name, **kwargs)
    provenance.setup(np.array([0.9, 0.5, 0.3]))
    return StoredRelation("r", INT2, provenance), provenance


def table_from(rows, provenance, tag_ids=None):
    if tag_ids is None:
        tags = provenance.one_tags(len(rows))
    else:
        tags = provenance.input_tags(np.array(tag_ids))
    return Table.from_rows(rows, INT2, tags)


class TestAdvance:
    def test_new_facts_become_frontier(self):
        rel, prov = make_relation()
        n = rel.advance(table_from([(1, 2), (3, 4)], prov))
        assert n == 2
        assert rel.n_facts() == 2
        assert rel.n_recent() == 2

    def test_duplicates_within_delta_collapse(self):
        rel, prov = make_relation()
        n = rel.advance(table_from([(1, 2), (1, 2), (1, 2)], prov))
        assert n == 1 and rel.n_facts() == 1

    def test_rediscovered_fact_not_recent(self):
        rel, prov = make_relation()
        rel.advance(table_from([(1, 2)], prov))
        n = rel.advance(table_from([(1, 2)], prov))
        assert n == 0
        assert rel.n_facts() == 1
        assert rel.n_recent() == 0

    def test_empty_delta_clears_frontier(self):
        rel, prov = make_relation()
        rel.advance(table_from([(1, 2)], prov))
        assert rel.n_recent() == 1
        rel.advance(Table.empty(INT2, prov))
        assert rel.n_recent() == 0

    def test_full_stays_sorted(self):
        rel, prov = make_relation()
        rel.advance(table_from([(5, 0), (1, 9)], prov))
        rel.advance(table_from([(3, 3), (0, 0)], prov))
        rows = rel.snapshot("full").rows()
        assert rows == sorted(rows)

    def test_partitions_disjoint_and_complete(self):
        rel, prov = make_relation()
        rel.advance(table_from([(1, 1)], prov))
        rel.advance(table_from([(2, 2)], prov))
        recent = set(rel.snapshot("recent").rows())
        stable = set(rel.snapshot("stable").rows())
        full = set(rel.snapshot("full").rows())
        assert recent == {(2, 2)}
        assert stable == {(1, 1)}
        assert recent | stable == full

    def test_tag_improvement_reenters_frontier(self):
        rel, prov = make_relation("minmaxprob")
        rel.advance(table_from([(1, 2)], prov, tag_ids=[2]))  # prob 0.3
        n = rel.advance(table_from([(1, 2)], prov, tag_ids=[0]))  # prob 0.9
        assert n == 1
        assert prov.prob(rel.snapshot("full").tags)[0] == pytest.approx(0.9)

    def test_tag_no_improvement_stays_stable(self):
        rel, prov = make_relation("minmaxprob")
        rel.advance(table_from([(1, 2)], prov, tag_ids=[0]))  # 0.9
        n = rel.advance(table_from([(1, 2)], prov, tag_ids=[2]))  # 0.3
        assert n == 0
        assert prov.prob(rel.snapshot("full").tags)[0] == pytest.approx(0.9)

    def test_absorbing_zero_facts_dropped(self):
        rel, prov = make_relation("minmaxprob")
        table = table_from([(1, 2)], prov)
        table.tags[:] = 0.0
        n = rel.advance(table)
        assert n == 0 and rel.n_facts() == 0

    def test_arity_zero_relation(self):
        provenance = create("unit")
        provenance.setup(np.zeros(0))
        rel = StoredRelation("flag", (), provenance)
        n = rel.advance(Table([], provenance.one_tags(3), 3))
        assert n == 1
        assert rel.n_facts() == 1
        n = rel.advance(Table([], provenance.one_tags(1), 1))
        assert n == 0

    def test_set_facts_marks_recent(self):
        rel, prov = make_relation()
        rel.set_facts(table_from([(1, 2), (3, 4)], prov))
        assert rel.n_recent() == 2

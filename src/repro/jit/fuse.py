"""The fusion compiler: lower a rule variant into fused kernels.

The interpreter dispatches one APM instruction at a time and materializes
every intermediate register (each ``put`` is a charged kernel producing a
full column).  This module instead *symbolically executes* a variant at
compile time, building a lazy dataflow graph over the loaded tables, and
collapses each region (:mod:`repro.jit.regions`) into a single fused
kernel: the join probe's match enumeration streams through the pipelined
gathers, filter compactions, ⊗ tag combination, projections, and the
final store — intermediates live "in registers" (graph nodes that are
only materialized when an eager boundary or the store epilogue forces
them).

Two rewrites do the fusing:

* **gather composition** — ``a[i][k] == a[i[k]]``, so a filter after a
  join compacts the (tiny) index arrays instead of every gathered
  column, and columns the filter predicate never reads are gathered
  exactly once, post-compaction;
* **elementwise pushdown** — ``take`` distributes over ⊗, dtype casts,
  and the bytecode ops (all elementwise-pure for every device semiring),
  so tag combination and projected expressions also evaluate
  post-compaction only.

Specialization + guards: a kernel is compiled against the recorded
column dtypes and the semiring's tag dtype.  Every execution re-checks
them against the live tables *before any side effect* and raises
:class:`~repro.errors.TraceGuardError` on drift — the interpreter then
re-executes the variant unfused (a clean deopt, never a wrong result).

Cost model (mirrors the CUDA discipline the paper targets: kernel-launch
overhead plus DRAM traffic dominate; fusion keeps intermediates in
registers): one :meth:`~repro.gpu.device.VirtualDevice.record_kernel`
charge per join/cross region with the region's match count as the row
term, one per join-free pipeline at its output size — versus the
interpreter's one charge per materialized register.  Hash-index builds
and output materialization stay on the same allocation accounting as the
interpreted path, so OOM semantics and buffer-reuse counters remain
comparable.

Result parity: every value the fused path stores is produced by the same
numpy/bytecode/provenance operations the interpreter would run, in the
same combination order, so rows, tags, and gradients are bitwise
identical.  The optional fused ⊕-merge (pre-deduplicating a variant's
delta through :func:`~repro.runtime.relation.dedup_table` before it is
handed to ``advance``) is only enabled for order-insensitive semirings —
``advance`` canonicalizes (sort + unique⟨⊕⟩) either way, so the final
stored state is bitwise unchanged while the concatenated delta shrinks.
"""

from __future__ import annotations

import numpy as np

from .regions import fused_kernel_count, select_regions
from ..apm import instructions as I
from ..apm.compiler import Variant
from ..errors import JitUnsupportedError, TraceGuardError
from ..gpu import bytecode
from ..gpu.device import ALLOC_LATENCY_S
from ..gpu.hash_table import HashIndex
from ..runtime.relation import dedup_table
from ..runtime.table import Table

__all__ = ["VariantKernel", "compile_variant"]

_MISSING = object()


class _Ctx:
    """Per-execution state: loaded tables + the node value memo."""

    __slots__ = ("tables", "interp", "provenance", "iteration", "memo")

    def __init__(self, tables, interp, provenance, iteration):
        self.tables = tables
        self.interp = interp
        self.provenance = provenance
        self.iteration = iteration
        self.memo: dict[int, object] = {}


class _Node:
    __slots__ = ()

    def value(self, ctx: _Ctx):
        found = ctx.memo.get(id(self), _MISSING)
        if found is _MISSING:
            found = self._eval(ctx)
            ctx.memo[id(self)] = found
        return found


class _LoadCol(_Node):
    __slots__ = ("load", "col")

    def __init__(self, load: int, col: int):
        self.load = load
        self.col = col

    def _eval(self, ctx):
        return ctx.tables[self.load].columns[self.col]


class _LoadTags(_Node):
    __slots__ = ("load",)

    def __init__(self, load: int):
        self.load = load

    def _eval(self, ctx):
        return ctx.tables[self.load].tags


class _Take(_Node):
    __slots__ = ("src", "index")

    def __init__(self, src: _Node, index: _Node):
        self.src = src
        self.index = index

    def _eval(self, ctx):
        return self.src.value(ctx)[self.index.value(ctx)]


class _CastIfNeeded(_Node):
    """The §5.2 copy-projection fast path: cast only on dtype mismatch
    (otherwise the column is passed through without a copy, exactly as
    the interpreter aliases it)."""

    __slots__ = ("src", "dtype")

    def __init__(self, src: _Node, dtype):
        self.src = src
        self.dtype = np.dtype(dtype)

    def _eval(self, ctx):
        value = self.src.value(ctx)
        return value if value.dtype == self.dtype else value.astype(self.dtype)


class _CastAlways(_Node):
    """Projection-expression epilogue (`np.asarray(...).astype(dtype)`,
    op-for-op what the interpreter runs)."""

    __slots__ = ("src", "dtype")

    def __init__(self, src: _Node, dtype):
        self.src = src
        self.dtype = np.dtype(dtype)

    def _eval(self, ctx):
        return np.asarray(self.src.value(ctx)).astype(self.dtype)


class _Expr(_Node):
    """One bytecode program over source columns.  Only the columns the
    program actually loads are forced; the rest stay unmaterialized."""

    __slots__ = ("program", "srcs", "used", "length_of")

    def __init__(self, program, srcs, length_of: _Node):
        self.program = program
        self.srcs = srcs
        self.used = {
            instr.arg
            for instr in program.instrs
            if instr.op == bytecode.LOAD_COL
        }
        self.length_of = length_of

    def _eval(self, ctx):
        cols = [
            src.value(ctx) if j in self.used else None
            for j, src in enumerate(self.srcs)
        ]
        n = len(self.length_of.value(ctx))
        return bytecode.execute(self.program, cols, n)


class _Keep(_Node):
    """Filter survivors as an index array — the compaction every
    downstream gather composes with instead of re-materializing rows."""

    __slots__ = ("mask",)

    def __init__(self, mask: _Node):
        self.mask = mask

    def _eval(self, ctx):
        keep = np.flatnonzero(self.mask.value(ctx).astype(bool))
        if ctx.interp.feedback is not None:
            ctx.interp.feedback.record_instruction("EvalFilter", len(keep))
        return keep


class _Otimes(_Node):
    __slots__ = ("left", "right")

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right

    def _eval(self, ctx):
        return ctx.provenance.otimes(self.left.value(ctx), self.right.value(ctx))


class _Build(_Node):
    """Hash-index construction, with the §4.2 static-register reuse the
    interpreted ``Build`` performs (same device cache, same accounting)."""

    __slots__ = ("srcs", "width", "static_key")

    def __init__(self, srcs, width: int, static_key):
        self.srcs = srcs
        self.width = width
        self.static_key = static_key

    def _eval(self, ctx):
        interp = ctx.interp
        index = None
        if self.static_key and interp.enable_static_reuse and ctx.iteration > 1:
            index = interp.device.get_static(self.static_key)
        if index is None:
            columns = [src.value(ctx) for src in self.srcs]
            index = HashIndex(columns, self.width)
            interp.device.profile.bytes_allocated += index.nbytes
            if self.static_key and interp.enable_static_reuse:
                interp.device.set_static(self.static_key, index)
        else:
            interp.device.profile.reused_allocations += 1
        return index


class _Probe(_Node):
    """The fused join kernel: one launch, match count as the row term
    (every match streams through the downstream pipeline in registers)."""

    __slots__ = ("index", "keys")

    def __init__(self, index: _Node, keys):
        self.index = index
        self.keys = keys

    def _eval(self, ctx):
        index = self.index.value(ctx)
        probe_cols = [key.value(ctx) for key in self.keys]
        probe_ids, build_ids, _counts = index.probe(probe_cols)
        ctx.interp.device.record_kernel(len(probe_ids))
        ctx.interp.device.profile.record_instruction("FusedKernel")
        if ctx.interp.feedback is not None:
            ctx.interp.feedback.record_instruction("Probe", len(probe_ids))
        return probe_ids, build_ids


class _Cross(_Node):
    """Cartesian index enumeration as one fused kernel."""

    __slots__ = ("left_tags", "right_tags")

    def __init__(self, left_tags: _Node, right_tags: _Node):
        self.left_tags = left_tags
        self.right_tags = right_tags

    def _eval(self, ctx):
        n_left = len(self.left_tags.value(ctx))
        n_right = len(self.right_tags.value(ctx))
        ctx.interp.device.record_kernel(n_left * n_right)
        ctx.interp.device.profile.record_instruction("FusedKernel")
        left = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
        right = np.tile(np.arange(n_right, dtype=np.int64), n_left)
        return left, right


class _Item(_Node):
    """One element of a pair-producing node (probe/cross sides)."""

    __slots__ = ("src", "item")

    def __init__(self, src: _Node, item: int):
        self.src = src
        self.item = item

    def _eval(self, ctx):
        return self.src.value(ctx)[self.item]


def _take(src: _Node, index: _Node) -> _Node:
    """``src[index]`` with fusion rewrites: gathers compose
    (``a[i][k] -> a[i[k]]``) and distribute over the elementwise nodes
    (⊗, casts), so compaction happens on index arrays and everything
    downstream evaluates post-compaction only."""
    if isinstance(src, _Take):
        return _Take(src.src, _take(src.index, index))
    if isinstance(src, _Otimes):
        return _Otimes(_take(src.left, index), _take(src.right, index))
    if isinstance(src, (_CastIfNeeded, _CastAlways)):
        return type(src)(_take(src.src, index), src.dtype)
    return _Take(src, index)


class _LoadSpec:
    """Guarded snapshot: predicate/partition plus the dtype signature the
    kernel was specialized against."""

    __slots__ = ("predicate", "partition", "dtypes")

    def __init__(self, predicate: str, partition: str, dtypes):
        self.predicate = predicate
        self.partition = partition
        self.dtypes = tuple(np.dtype(dt) for dt in dtypes)


class _StoreSpec:
    __slots__ = ("predicate", "cols", "tags")

    def __init__(self, predicate: str, cols, tags: _Node):
        self.predicate = predicate
        self.cols = cols
        self.tags = tags


class VariantKernel:
    """One rule variant lowered to fused kernels.

    ``execute`` has the same observable contract as the interpreter's
    ``_execute_variant`` — bitwise-identical delta tables, the same
    feedback recordings, the same static-index and allocation-site
    behavior — at :attr:`n_kernels` charged kernel launches instead of
    one per materialized register.
    """

    def __init__(
        self,
        rule_key: str | None,
        loads: list[_LoadSpec],
        stores: list[_StoreSpec],
        n_joins: int,
        n_kernels: int,
        tag_dtype: np.dtype,
        fused_dedup: bool,
    ):
        self.rule_key = rule_key
        self.loads = loads
        self.stores = stores
        self.n_joins = n_joins
        #: Charged fused kernels per execution (vs. the interpreter's
        #: per-register count) — what bench_jit reports.
        self.n_kernels = n_kernels
        self.tag_dtype = tag_dtype
        self.fused_dedup = fused_dedup

    # ------------------------------------------------------------------

    def _guarded_tables(self, database) -> list[Table]:
        """Snapshot every Load and check the specialization guards.
        Runs before any charge/feedback/store side effect, so a failure
        deopts cleanly to the interpreter."""
        provenance = database.provenance
        if provenance.tag_dtype() != self.tag_dtype:
            raise TraceGuardError(
                f"tag dtype drifted: trace compiled for {self.tag_dtype}, "
                f"database provenance {provenance.name!r} uses "
                f"{provenance.tag_dtype()}"
            )
        tables = []
        for spec in self.loads:
            table = database.relation(spec.predicate).snapshot(spec.partition)
            if len(table.columns) != len(spec.dtypes):
                raise TraceGuardError(
                    f"schema drifted: {spec.predicate!r} has "
                    f"{len(table.columns)} columns, trace expected "
                    f"{len(spec.dtypes)}"
                )
            for j, (col, expected) in enumerate(zip(table.columns, spec.dtypes)):
                if col.dtype != expected:
                    raise TraceGuardError(
                        f"column dtype drifted: {spec.predicate!r}[{j}] is "
                        f"{col.dtype}, trace specialized for {expected}"
                    )
            tables.append(table)
        return tables

    def execute(self, interp, database, deltas, iteration: int) -> None:
        """Run the fused translation; raises
        :class:`~repro.errors.TraceGuardError` (side-effect free) when a
        guard fails."""
        tables = self._guarded_tables(database)
        provenance = database.provenance
        profile = interp.device.profile
        ctx = _Ctx(tables, interp, provenance, iteration)
        for index, store in enumerate(self.stores):
            tags = store.tags.value(ctx)
            columns = [node.value(ctx) for node in store.cols]
            if self.n_joins == 0:
                # Join-free pipeline: the evaluate-and-store kernel is
                # the segment's only launch.
                interp.device.record_kernel(len(tags))
                profile.record_instruction("FusedKernel")
            dead = provenance.is_absorbing_zero(tags)
            if dead.any():
                keep = np.flatnonzero(~dead)
                columns = [c[keep] for c in columns]
                tags = tags[keep]
            table = Table(columns, tags, len(tags))
            if interp.feedback is not None:
                # Recorded pre-dedup, like the interpreter, so adaptive
                # drift detection sees identical rule actuals.
                interp.feedback.record_instruction("StoreDelta", table.n_rows)
                if self.rule_key is not None:
                    interp.feedback.record_rule(self.rule_key, table.n_rows)
            if self.fused_dedup and table.n_rows:
                # The fused ⊕-merge: ``advance`` re-canonicalizes, so for
                # the order-insensitive semirings this gate admits the
                # final state is bitwise unchanged.
                table = dedup_table(table, provenance)
            for j, array in enumerate([*table.columns, table.tags]):
                site = f"jit:{self.rule_key}:{index}:{j}"
                profile.allocation_count += 1
                if interp.enable_buffer_reuse and site in interp._seen_sites:
                    profile.reused_allocations += 1
                else:
                    profile.bytes_allocated += array.nbytes
                    profile.alloc_seconds += ALLOC_LATENCY_S
                interp._seen_sites.add(site)
            if table.n_rows:
                deltas[store.predicate].append(table)
        interp._check_capacity(
            database,
            {
                position: value
                for position, value in enumerate(ctx.memo.values())
                if isinstance(value, np.ndarray)
            },
        )


def compile_variant(
    variant: Variant, fused_dedup: bool, tag_dtype
) -> VariantKernel:
    """Symbolically execute ``variant`` into a :class:`VariantKernel`.

    Raises :class:`~repro.errors.JitUnsupportedError` when the variant
    contains an instruction with no fused translation (the caller keeps
    that variant on the interpreter).
    """
    regions = select_regions(variant)  # validates support, counts kernels
    env: dict[str, _Node] = {}
    loads: list[_LoadSpec] = []
    stores: list[_StoreSpec] = []
    n_joins = 0

    for instruction in variant.instructions:
        if isinstance(instruction, I.Load):
            position = len(loads)
            loads.append(
                _LoadSpec(
                    instruction.predicate,
                    instruction.partition,
                    instruction.dst.dtypes,
                )
            )
            for j, register in enumerate(instruction.dst.cols):
                env[register] = _LoadCol(position, j)
            env[instruction.dst.tags] = _LoadTags(position)

        elif isinstance(instruction, I.EvalProject):
            src = instruction.src
            for j, program in enumerate(instruction.programs):
                dtype = instruction.dst.dtypes[j]
                if isinstance(program, int):
                    env[instruction.dst.cols[j]] = _CastIfNeeded(
                        env[src.cols[program]], dtype
                    )
                else:
                    expr = _Expr(
                        program,
                        [env[c] for c in src.cols],
                        env[src.tags],
                    )
                    env[instruction.dst.cols[j]] = _CastAlways(expr, dtype)
            env[instruction.dst.tags] = env[src.tags]

        elif isinstance(instruction, I.EvalFilter):
            src = instruction.src
            mask = _Expr(
                instruction.program, [env[c] for c in src.cols], env[src.tags]
            )
            keep = _Keep(mask)
            for dst, col in zip(instruction.dst.cols, src.cols):
                env[dst] = _take(env[col], keep)
            env[instruction.dst.tags] = _take(env[src.tags], keep)

        elif isinstance(instruction, I.Build):
            env[instruction.dst] = _Build(
                [env[c] for c in instruction.src.cols],
                instruction.width,
                instruction.static_key,
            )

        elif isinstance(instruction, I.Probe):
            pair = _Probe(
                env[instruction.index],
                [env[c] for c in instruction.probe.cols[: instruction.width]],
            )
            env[instruction.dst_probe] = _Item(pair, 0)
            env[instruction.dst_build] = _Item(pair, 1)
            n_joins += 1

        elif isinstance(instruction, I.Gather):
            for dst, src in zip(instruction.dst_cols, instruction.src_cols):
                env[dst] = _take(env[src], env[instruction.index])

        elif isinstance(instruction, I.GatherTags):
            left = _take(
                env[instruction.left_tags], env[instruction.left_index]
            )
            right = _take(
                env[instruction.right_tags], env[instruction.right_index]
            )
            env[instruction.dst] = _Otimes(left, right)

        elif isinstance(instruction, I.CopyTags):
            env[instruction.dst] = env[instruction.src]

        elif isinstance(instruction, I.CrossIndices):
            pair = _Cross(
                env[instruction.left_tags], env[instruction.right_tags]
            )
            env[instruction.dst_left] = _Item(pair, 0)
            env[instruction.dst_right] = _Item(pair, 1)
            n_joins += 1

        elif isinstance(instruction, I.StoreDelta):
            src = instruction.src
            stores.append(
                _StoreSpec(
                    instruction.predicate,
                    [env[c] for c in src.cols],
                    env[src.tags],
                )
            )

        else:  # pragma: no cover - select_regions already rejected these
            raise JitUnsupportedError(
                f"{type(instruction).__name__} has no fused translation"
            )

    if not stores:
        raise JitUnsupportedError("variant has no StoreDelta to fuse into")
    return VariantKernel(
        rule_key=variant.rule_key,
        loads=loads,
        stores=stores,
        n_joins=n_joins,
        n_kernels=fused_kernel_count(regions),
        tag_dtype=np.dtype(tag_dtype),
        fused_dedup=fused_dedup,
    )

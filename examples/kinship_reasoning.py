"""CLUTRR-style kinship reasoning with noisy relation extraction.

A relation extractor (simulated) reads a passage about a family and
produces a distribution over kinship relations per sentence; the Datalog
program composes them recursively to answer "how is person 0 related to
person N?" — even across 10-hop chains where no sentence states the
answer directly.

Run with:  python examples/kinship_reasoning.py
"""

from repro import LobsterEngine
from repro.workloads import clutrr


def main() -> None:
    engine = LobsterEngine(
        clutrr.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=32
    )

    for chain_length in (2, 4, 6, 8, 10):
        instance = clutrr.generate_instance(chain_length, seed=chain_length)
        database = engine.create_database()
        clutrr.populate_database(database, instance, beam=3)
        engine.run(database)

        answers = engine.query_probs(database, "answer")
        predicted = clutrr.predicted_relation(answers)
        truth = instance.target_relation
        names = [clutrr.RELATIONS[r][0] for r in instance.chain_relations]
        print(f"chain of {chain_length}: {' -> '.join(names)}")
        print(
            f"  predicted: {clutrr.RELATIONS[predicted][0]!r} "
            f"(truth: {clutrr.RELATIONS[truth][0]!r}) "
            f"{'OK' if predicted == truth else 'WRONG'}"
        )


if __name__ == "__main__":
    main()

"""Fig. 11: Probabilistic Static Analysis speedup over Scallop, plus the
§6.4 ProbLog exact-inference timeout observation.

Expected shape: Lobster beats the tuple-at-a-time Scallop baseline on
every subject, with larger margins on larger subjects; ProbLog's exact
inference exceeds any reasonable budget on all but trivial instances.
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine
from repro.baselines import ProbLogEngine, ScallopInterpreter
from repro.workloads import static_analysis

from _harness import record, print_table, report, speedup, timed

SUITE = "fig11_psa"

SUBJECTS = list(static_analysis.SUBJECTS)


@pytest.fixture(scope="module")
def results():
    rows = {}
    for subject in SUBJECTS:
        instance = static_analysis.psa_instance(subject)

        # Fresh database per trial, built untimed — a fixpointed db
        # re-runs warm, and populating shouldn't be charged to the engine.
        def setup_lobster():
            lobster = LobsterEngine(static_analysis.PROGRAM, provenance="minmaxprob")
            ldb = lobster.create_database()
            static_analysis.populate_database(ldb, instance)
            return lobster, ldb

        def setup_scallop():
            scallop = ScallopInterpreter(
                static_analysis.PROGRAM, provenance="minmaxprob", timeout_seconds=120
            )
            sdb = scallop.create_database()
            static_analysis.populate_database(sdb, instance)
            return scallop, sdb

        run = lambda state: state[0].run(state[1])
        rows[subject] = (timed(run, setup=setup_scallop), timed(run, setup=setup_lobster))
        report(SUITE, f"PSA/{subject}/scallop", rows[subject][0], engine="scallop")
        report(SUITE, f"PSA/{subject}/lobster", rows[subject][1], engine="lobster")
    return rows


def test_fig11_psa_speedup(results, benchmark):
    def check():
        table = [
            [subject, scallop.label, lobster.label, speedup(scallop, lobster)]
            for subject, (scallop, lobster) in results.items()
        ]
        print_table(
            "Fig. 11 — Probabilistic Static Analysis, speedup over Scallop",
            ["subject", "scallop", "lobster", "speedup"],
            table,
        )
        # Typed ratios: unmeasurable subjects are explicit (ratio.ok is
        # False), and the shape assertion cannot pass vacuously.
        ratios = {
            subject: speedup(scallop, lobster)
            for subject, (scallop, lobster) in results.items()
        }
        assert any(r.ok for r in ratios.values()), "no subject measurable"
        for subject, ratio in ratios.items():
            if ratio.ok:
                assert ratio.value > 1.0, subject


    record(benchmark, check)

def test_problog_exact_inference_times_out(benchmark):
    def check():
        """§6.4: ProbLog hits the budget on PSA (exact WMC is exponential)."""
        instance = static_analysis.psa_instance("sunflow-core")
        problog = ProbLogEngine(static_analysis.PROGRAM, timeout_seconds=5.0)
        pdb = problog.create_database()
        static_analysis.populate_database(pdb, instance)
        measurement = timed(lambda: problog.run(pdb))
        print(f"ProbLog on sunflow-core: {measurement.label}")
        assert measurement.status == "timeout"


    record(benchmark, check)

def test_problog_finishes_on_trivial_instance(benchmark):
    def check():
        """Sanity: the exact engine is correct where it is tractable."""
        problog = ProbLogEngine(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).",
            timeout_seconds=30,
        )
        pdb = problog.create_database()
        pdb.add_facts("edge", [(0, 1), (1, 2)], probs=[0.5, 0.5])
        problog.run(pdb)
        assert problog.query_prob(pdb, "path", (0, 2)) == pytest.approx(0.25)


    record(benchmark, check)

def test_fig11_benchmark_psa_lobster(benchmark):
    instance = static_analysis.psa_instance("sunflow-core")

    def run():
        engine = LobsterEngine(static_analysis.PROGRAM, provenance="minmaxprob")
        db = engine.create_database()
        static_analysis.populate_database(db, instance)
        engine.run(db)

    benchmark.pedantic(run, rounds=2, iterations=1)

"""Per-relation statistics, maintained incrementally by the storage layer.

A :class:`RelationStats` summarizes one stored relation's ``full`` table:
exact row count, per-column min/max, a KMV distinct-count sketch, and a
count-min frequency sketch per column.  The summaries are chosen so the
*incremental* maintenance the storage layer performs is bitwise equal to
recomputing from scratch (`tests/test_stats.py` property-checks this):

* :meth:`RelationStats.observe_added` folds the rows an
  :meth:`~repro.runtime.relation.StoredRelation.advance` actually *added*
  (brand-new facts — tag-improved duplicates contribute no new rows to
  ``full``) — insert-only updates are exactly mergeable for every field;
* retractions (:meth:`~repro.runtime.relation.StoredRelation.remove_rows`)
  rebuild via :meth:`RelationStats.from_table` — min/max and KMV cannot
  shrink incrementally, and the retraction path is already O(n).

Statistics are **opt-in per relation** (:meth:`StoredRelation.enable_stats
<repro.runtime.relation.StoredRelation.enable_stats>`): until something
asks for them — the adaptive planner, a stats catalog — the storage hot
path pays nothing.

A :class:`StatsCatalog` is the planner's read view: a name-keyed snapshot
of relation statistics plus the *bucket key* that content-addresses
compiled plans.  Buckets quantize row and distinct counts to powers of
two, so serving traffic with per-request databases of similar shape maps
to one compiled plan, while order-of-magnitude drift — the signal that a
chosen join order is stale — lands in a fresh bucket and triggers a
re-plan through the ordinary program-cache lookup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .sketches import CountMinSketch, KmvSketch

__all__ = ["ColumnStats", "RelationStats", "StatsCatalog", "log2_bucket"]


def log2_bucket(count: float) -> int:
    """Quantize a cardinality to its power-of-two bucket."""
    return int(math.floor(math.log2(count + 1.0)))


class ColumnStats:
    """Summary of one value column: range, distinct count, frequencies."""

    def __init__(self) -> None:
        self.min: float | None = None
        self.max: float | None = None
        self.kmv = KmvSketch()
        self.cms = CountMinSketch()
        #: Whether the summarized column holds floats — probes must be
        #: coerced to the column's dtype before hashing (int64 and
        #: float64 views of the same number hash differently).
        self.float_values = False

    @classmethod
    def from_column(cls, values: np.ndarray) -> "ColumnStats":
        stats = cls()
        stats.add(values)
        return stats

    def add(self, values: np.ndarray) -> None:
        if len(values) == 0:
            return
        self.float_values = values.dtype.kind == "f"
        lo, hi = float(values.min()), float(values.max())
        self.min = lo if self.min is None else min(self.min, lo)
        self.max = hi if self.max is None else max(self.max, hi)
        self.kmv.add(values)
        self.cms.add(values)

    @property
    def n_distinct(self) -> float:
        return self.kmv.estimate()

    def skew(self) -> float:
        """Fraction of rows carried by the (estimated) heaviest value —
        1.0 means one value dominates, ~1/n_distinct means uniform."""
        if self.cms.total == 0:
            return 0.0
        return self.cms.max_frequency() / self.cms.total

    def coerce(self, value):
        """Map a probe constant onto the column's value domain; None
        when no stored value can equal it (e.g. 5.5 on an int column).
        """
        if self.float_values:
            return float(value)
        if isinstance(value, float) and value != int(value):
            return None
        return int(value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnStats)
            and self.min == other.min
            and self.max == other.max
            and self.float_values == other.float_values
            and self.kmv == other.kmv
            and self.cms == other.cms
        )

    def state_dict(self) -> dict:
        return {
            "min": self.min,
            "max": self.max,
            "float_values": self.float_values,
            "kmv": self.kmv.state_dict(),
            "cms": self.cms.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ColumnStats":
        stats = cls()
        stats.min = state["min"]
        stats.max = state["max"]
        stats.float_values = bool(state["float_values"])
        stats.kmv = KmvSketch.from_state(state["kmv"])
        stats.cms = CountMinSketch.from_state(state["cms"])
        return stats


class RelationStats:
    """Row count plus per-column :class:`ColumnStats` for one relation."""

    def __init__(self, arity: int) -> None:
        self.row_count = 0
        self.columns = [ColumnStats() for _ in range(arity)]

    @classmethod
    def from_table(cls, table) -> "RelationStats":
        """Recompute from a :class:`~repro.runtime.table.Table` (the
        from-scratch reference the incremental path must match)."""
        stats = cls(table.arity)
        stats.observe_added(table.columns, table.n_rows)
        return stats

    def observe_added(self, columns: list[np.ndarray], n_rows: int) -> None:
        """Fold ``n_rows`` newly *added* rows in (insert-only update)."""
        if n_rows == 0:
            return
        self.row_count += n_rows
        for stats, column in zip(self.columns, columns):
            stats.add(column)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def bucket(self) -> str:
        """This relation's plan bucket: log2 row count plus per-column
        log2 distinct counts.  Deterministic (KMV is), and coarse enough
        that same-shape serving databases share one compiled plan."""
        cols = ",".join(str(log2_bucket(c.n_distinct)) for c in self.columns)
        return f"{log2_bucket(self.row_count)}[{cols}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationStats)
            and self.row_count == other.row_count
            and self.columns == other.columns
        )

    def state_dict(self) -> dict:
        """Serializable snapshot.  Round-tripping it preserves the
        :meth:`bucket` exactly, so a plan cached against this catalog
        stays addressable after checkpoint restore."""
        return {
            "row_count": self.row_count,
            "columns": [column.state_dict() for column in self.columns],
        }

    @classmethod
    def from_state(cls, state: dict) -> "RelationStats":
        stats = cls(0)
        stats.row_count = int(state["row_count"])
        stats.columns = [
            ColumnStats.from_state(column) for column in state["columns"]
        ]
        return stats


@dataclass
class StatsCatalog:
    """The planner's snapshot of per-relation statistics.

    Built from a finalized database; EDB relations are populated, and IDB
    relations appear once a prior run has materialized them — which is
    exactly the feedback loop: the first plan sees input sizes only,
    re-plans after execution see observed intermediate cardinalities too.
    """

    relations: dict[str, RelationStats] = field(default_factory=dict)

    @classmethod
    def from_database(cls, database) -> "StatsCatalog":
        """Snapshot ``database``'s relations, enabling incremental stats
        maintenance on each (subsequent advances keep them current)."""
        catalog = cls()
        for name, rel in database.relations.items():
            catalog.relations[name] = rel.enable_stats()
        return catalog

    def get(self, name: str) -> RelationStats | None:
        return self.relations.get(name)

    def __bool__(self) -> bool:
        return any(stats.row_count for stats in self.relations.values())

    def bucket_key(self) -> str:
        """Content-address for plan caching: relation name -> bucket,
        sorted by name so dict order never leaks into cache keys."""
        return ";".join(
            f"{name}:{stats.bucket()}"
            for name, stats in sorted(self.relations.items())
        )

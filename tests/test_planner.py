"""Cost-based planning: ordering, equivalence, feedback, re-planning.

The planner contract has three legs:

* **determinism** — the syntactic heuristic breaks ties stably (original
  body order) so content-addressed plans never wobble;
* **equivalence** — every plan the cost-based path picks produces rows
  *and tags* bitwise identical to the heuristic plan, across semirings,
  on TC and CSPA (only operator order may change);
* **adaptivity** — observed statistics select the plan bucket, drift
  invalidates cached plans, and the serving loop re-plans transparently
  between batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DevicePool,
    LobsterEngine,
    LobsterSession,
    MetricsRegistry,
    ProgramCache,
    Request,
    Scheduler,
)
from repro.datalog import ast
from repro.provenance.registry import create as create_provenance
from repro.ram import planner
from repro.runtime.relation import StoredRelation
from repro.runtime.table import Table
from repro.stats import CostModel, StatsCatalog
from repro.workloads.analytics import CSPA
from _helpers import TC_PROGRAM, random_digraph

PROV_KWARGS = {"top-k-proofs-device": {"k": 2}}

SKEWED = """
rel hit(x, z) :- big_a(x, y) and big_b(y, z) and tiny(x).
query hit
"""


def tags_identical(a: np.ndarray, b: np.ndarray) -> bool:
    return a.dtype == b.dtype and a.tobytes() == b.tobytes()


def atom(pred: str, *vars_: str) -> ast.Atom:
    return ast.Atom(pred, tuple(ast.Var(v) for v in vars_))


def catalog_of(sizes: dict[str, list[tuple]]) -> StatsCatalog:
    prov = create_provenance("unit")
    relations = {}
    for name, rows in sizes.items():
        arity = len(rows[0]) if rows else 0
        rel = StoredRelation(name, tuple([np.dtype(np.int64)] * arity), prov)
        tags = prov.input_tags(np.full(len(rows), -1, dtype=np.int64))
        rel.advance(Table.from_rows(rows, rel.dtypes, tags))
        relations[name] = rel.enable_stats()
    return StatsCatalog(relations)


class TestTieBreaking:
    """order_atoms must break equal scores by original body position."""

    def test_equal_share_counts_keep_original_order(self):
        atoms = [atom("r", "x", "y"), atom("s", "y", "z"), atom("t", "y", "w")]
        ordered = planner.order_atoms(atoms)
        # s and t both share exactly {y} with the bound set after r; the
        # textually first (s) must win the tie.
        assert [a.predicate for a in ordered] == ["r", "s", "t"]

    def test_all_disconnected_atoms_stay_in_order(self):
        atoms = [atom("a", "x"), atom("b", "y"), atom("c", "z")]
        ordered = planner.order_atoms(atoms)
        assert [a.predicate for a in ordered] == ["a", "b", "c"]

    def test_tie_break_is_first_not_last(self):
        # Regression: a >= comparison would pick the *last* equal-score
        # atom and silently change every cached plan's content address.
        atoms = [
            atom("seed", "x"),
            atom("left", "x", "y"),
            atom("right", "x", "z"),
        ]
        ordered = planner.order_atoms(atoms)
        assert [a.predicate for a in ordered] == ["seed", "left", "right"]


class TestCostBasedOrdering:
    def test_tiny_relation_drives_order(self):
        atoms = [
            atom("big_a", "x", "y"),
            atom("big_b", "y", "z"),
            atom("tiny", "x"),
        ]
        rng = np.random.default_rng(0)
        catalog = catalog_of(
            {
                "big_a": [
                    (int(a), int(b))
                    for a, b in rng.integers(0, 100, size=(2000, 2))
                ],
                "big_b": [
                    (int(a), int(b))
                    for a, b in rng.integers(0, 100, size=(2000, 2))
                ],
                "tiny": [(1,), (2,)],
            }
        )
        plan = planner.plan_atoms(atoms, [], catalog)
        assert plan.used_stats
        order = [a.predicate for a in plan.order]
        # tiny must join before the big-big product materializes.
        assert order.index("tiny") < 2
        assert plan.estimated_rows is not None
        assert plan.estimated_cost is not None

    def test_no_stats_falls_back_to_heuristic(self):
        atoms = [atom("a", "x", "y"), atom("b", "y", "z")]
        for catalog in (None, StatsCatalog({})):
            plan = planner.plan_atoms(atoms, [], catalog)
            assert not plan.used_stats
            assert plan.estimated_rows is None
            assert [x.predicate for x in plan.order] == [
                x.predicate for x in planner.order_atoms(atoms)
            ]

    def test_greedy_path_beyond_dp_limit(self):
        chain = [atom(f"r{i}", f"v{i}", f"v{i+1}") for i in range(10)]
        rows = {
            f"r{i}": [(j, j + 1) for j in range(5 + 50 * i)] for i in range(10)
        }
        plan = planner.plan_atoms(chain, [], catalog_of(rows))
        assert plan.used_stats
        assert sorted(a.predicate for a in plan.order) == sorted(rows)
        # The smallest relation seeds the greedy chain.
        assert plan.order[0].predicate == "r0"

    def test_equal_cost_plans_are_deterministic(self):
        atoms = [atom("p", "x", "y"), atom("q", "y", "z")]
        rows = {"p": [(1, 2)] * 1, "q": [(2, 3)]}
        first = planner.plan_atoms(atoms, [], catalog_of(rows))
        second = planner.plan_atoms(atoms, [], catalog_of(rows))
        assert [a.predicate for a in first.order] == [
            a.predicate for a in second.order
        ]

    def test_comparison_selectivity_applies(self):
        atoms = [atom("r", "x", "y")]
        rows = {"r": [(i, i) for i in range(100)]}
        comparison = ast.Comparison("==", ast.Var("x"), ast.Var("y"))
        with_cmp = planner.plan_atoms(atoms, [comparison], catalog_of(rows))
        without = planner.plan_atoms(atoms, [], catalog_of(rows))
        assert with_cmp.estimated_rows < without.estimated_rows

    def test_exchange_cost_priced_for_shards(self):
        atoms = [atom("a", "x", "y"), atom("b", "y", "z")]
        rows = {
            "a": [(i, i % 7) for i in range(300)],
            "b": [(i % 7, i) for i in range(300)],
        }
        local = planner.plan_atoms(atoms, [], catalog_of(rows), CostModel.for_shards(1))
        sharded = planner.plan_atoms(
            atoms, [], catalog_of(rows), CostModel.for_shards(4)
        )
        assert sharded.estimated_cost > local.estimated_cost


def run_pair(source, provenance, loader, **engine_kwargs):
    """(heuristic db, cost-based db) after identical runs."""
    kwargs = PROV_KWARGS.get(provenance, {})
    cache = ProgramCache()
    heuristic = LobsterEngine(source, provenance=provenance, cache=cache, **kwargs)
    hdb = heuristic.create_database()
    loader(hdb)
    heuristic.run(hdb)

    adaptive = LobsterEngine(
        source,
        provenance=provenance,
        cache=cache,
        adaptive=True,
        **engine_kwargs,
        **kwargs,
    )
    adb = adaptive.create_database()
    loader(adb)
    result = adaptive.run(adb)
    return hdb, adb, result


class TestBitwiseEquivalence:
    """Cost-based plans must match heuristic plans row- and tag-wise."""

    @pytest.mark.parametrize(
        "provenance", ["unit", "minmaxprob", "top-k-proofs-device"]
    )
    def test_tc(self, provenance):
        rng = np.random.default_rng(11)
        edges = random_digraph(rng, 30, 120)
        probs = list(rng.uniform(0.05, 0.99, size=len(edges)))

        def load(db):
            db.add_facts(
                "edge", edges, probs=probs if provenance != "unit" else None
            )

        hdb, adb, result = run_pair(TC_PROGRAM, provenance, load)
        expected, actual = hdb.result("path"), adb.result("path")
        assert actual.rows() == expected.rows()
        assert tags_identical(actual.tags, expected.tags)
        assert result.feedback is not None
        assert result.feedback.stats_bucket is not None

    @pytest.mark.parametrize(
        "provenance", ["unit", "minmaxprob", "top-k-proofs-device"]
    )
    def test_cspa(self, provenance):
        rng = np.random.default_rng(5)
        src = rng.integers(1, 24, size=36)
        dst = (src * rng.uniform(0.0, 1.0, size=36)).astype(np.int64)
        assign = sorted({(int(a), int(b)) for a, b in zip(src, dst) if a != b})
        deref = sorted(
            {
                (int(a), int(b))
                for a, b in zip(
                    rng.integers(0, 24, size=8), rng.integers(0, 24, size=8)
                )
            }
        )
        probs = list(rng.uniform(0.1, 0.99, size=len(assign)))

        def load(db):
            db.add_facts(
                "assign", assign, probs=probs if provenance != "unit" else None
            )
            db.add_facts("dereference", deref)

        hdb, adb, _ = run_pair(CSPA, provenance, load)
        for predicate in ("value_flow", "memory_alias", "value_alias"):
            expected, actual = hdb.result(predicate), adb.result(predicate)
            assert actual.rows() == expected.rows()
            assert tags_identical(actual.tags, expected.tags)

    def test_skewed_join_identical_and_cheaper(self):
        rng = np.random.default_rng(3)
        big_a = [(int(a), int(b)) for a, b in rng.integers(0, 150, size=(2500, 2))]
        big_b = [(int(a), int(b)) for a, b in rng.integers(0, 150, size=(2500, 2))]
        tiny = [(i,) for i in range(3)]

        def load(db):
            db.add_facts("big_a", big_a)
            db.add_facts("big_b", big_b)
            db.add_facts("tiny", tiny)

        hdb, adb, result = run_pair(SKEWED, "unit", load)
        assert adb.result("hit").rows() == hdb.result("hit").rows()
        # The cost-based plan joins through tiny first: strictly fewer
        # modeled kernel-seconds than the syntactic big-big-first plan.
        heuristic = LobsterEngine(SKEWED, cache=ProgramCache())
        hdb2 = heuristic.create_database()
        load(hdb2)
        h_result = heuristic.run(hdb2)
        assert result.profile.kernel_seconds < h_result.profile.kernel_seconds


class TestAdaptiveReplanning:
    def test_first_run_selects_bucket_plan(self):
        cache = ProgramCache()
        engine = LobsterEngine(TC_PROGRAM, cache=cache, adaptive=True)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (2, 3)])
        result = engine.run(db)
        assert result.replanned  # compile-time plan -> bucket plan
        assert result.feedback.stats_bucket is not None
        assert result.feedback.rule_estimates
        assert result.feedback.rule_actuals

    def test_same_shape_reuses_plan(self):
        cache = ProgramCache()
        engine = LobsterEngine(TC_PROGRAM, cache=cache, adaptive=True)
        for i, expect_replan in ((0, True), (1, False)):
            db = engine.create_database()
            db.add_facts("edge", [(i, i + 1), (i + 1, i + 2)])
            result = engine.run(db)
            assert result.replanned is expect_replan
        assert cache.stats.hits >= 1  # second run's plan was a cache hit

    def test_bucket_drift_triggers_replan(self):
        cache = ProgramCache()
        engine = LobsterEngine(TC_PROGRAM, cache=cache, adaptive=True)
        small = engine.create_database()
        small.add_facts("edge", [(0, 1)])
        engine.run(small)
        big = engine.create_database()
        big.add_facts("edge", [(i, i + 1) for i in range(200)])
        result = engine.run(big)
        assert result.replanned  # order-of-magnitude jump -> new bucket

    def test_feedback_drift_invalidates_cached_plan(self):
        cache = ProgramCache()
        # A 1.01x threshold makes any estimation error count as drift.
        engine = LobsterEngine(
            TC_PROGRAM, cache=cache, adaptive=True, replan_drift=1.01
        )
        db = engine.create_database()
        db.add_facts("edge", [(i, i + 1) for i in range(40)])
        result = engine.run(db)
        assert result.feedback.max_drift() > 1.01
        assert cache.stats.invalidations >= 1
        # The invalidated bucket re-compiles on the next same-shape run.
        db2 = engine.create_database()
        db2.add_facts("edge", [(i, i + 1) for i in range(40)])
        misses_before = cache.stats.misses
        engine.run(db2)
        assert cache.stats.misses > misses_before

    def test_drift_invalidation_does_not_thrash(self):
        """Structural estimator error (same data, persistent drift) must
        invalidate at most once per plan key — a hot serving path cannot
        pay a full recompile per batch for a plan that will not change."""
        cache = ProgramCache()
        engine = LobsterEngine(
            TC_PROGRAM, cache=cache, adaptive=True, replan_drift=1.01
        )
        edges = [(i, i + 1) for i in range(40)]
        for _ in range(2):
            db = engine.create_database()
            db.add_facts("edge", edges)
            engine.run(db)
        assert cache.stats.invalidations == 1
        misses_after_two = cache.stats.misses
        db = engine.create_database()
        db.add_facts("edge", edges)
        engine.run(db)  # steady state: cache hit, no new invalidation
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == misses_after_two

    def test_cost_model_separates_cached_plans(self):
        """A sharded engine's exchange-priced plan and a single-device
        plan must not share one cache entry for the same stats bucket."""
        from repro.runtime.cache import OptimizationConfig, cache_key, plan_bucket

        rows = {"a": [(i, i % 5) for i in range(50)]}
        catalog = catalog_of(rows)
        single = plan_bucket(catalog, CostModel.for_shards(1))
        sharded = plan_bucket(catalog, CostModel.for_shards(4))
        assert single != sharded
        opts = OptimizationConfig()
        assert cache_key(TC_PROGRAM, "unit", opts, False, single) != cache_key(
            TC_PROGRAM, "unit", opts, False, sharded
        )
        assert plan_bucket(None, None) is None

    def test_incremental_run_keeps_delta_seeding(self):
        """Adaptive plan selection must not break the warm path."""
        cache = ProgramCache()
        engine = LobsterEngine(TC_PROGRAM, cache=cache, adaptive=True)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        engine.run(db)
        db.add_facts("edge", [(2, 3)])
        result = engine.run(db)
        assert result.incremental
        assert sorted(db.result("path").rows()) == sorted(
            (a, b) for a in range(4) for b in range(a + 1, 4)
        )

    def test_adaptive_requires_cache(self):
        from repro import LobsterError

        with pytest.raises(LobsterError):
            LobsterEngine(TC_PROGRAM, cache=False, adaptive=True)

    def test_non_adaptive_engine_unchanged(self):
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        result = engine.run(db)
        assert result.feedback is None
        assert result.replanned is False


class TestShardedFeedback:
    def test_shard_rows_reported_and_results_identical(self):
        rng = np.random.default_rng(9)
        edges = random_digraph(rng, 30, 100)
        cache = ProgramCache()
        single = LobsterEngine(TC_PROGRAM, cache=cache)
        sdb = single.create_database()
        sdb.add_facts("edge", edges)
        single.run(sdb)

        sharded = LobsterEngine(TC_PROGRAM, cache=cache, shards=2, adaptive=True)
        ddb = sharded.create_database()
        ddb.add_facts("edge", edges)
        result = sharded.run(ddb)
        assert result.shards == 2
        assert result.feedback is not None
        assert result.feedback.shard_rows  # exchange loop reported
        assert set(result.feedback.shard_rows) <= {0, 1}
        assert result.feedback.shard_imbalance() >= 1.0
        assert ddb.result("path").rows() == sdb.result("path").rows()

    def test_sharded_rule_actuals_not_deflated(self):
        """Regression: per-shard firings are ~1/N of a rule's global
        output; reporting them raw would inflate drift ~Nx and trigger
        spurious re-planning.  The executor must aggregate across shards,
        so the sharded actuals can never fall below the single-device
        peak firing."""
        rng = np.random.default_rng(4)
        edges = random_digraph(rng, 25, 90)

        def run(shards):
            engine = LobsterEngine(
                TC_PROGRAM, cache=ProgramCache(), shards=shards, adaptive=True
            )
            db = engine.create_database()
            db.add_facts("edge", edges)
            return engine.run(db).feedback

        single = run(1)
        sharded = run(2)
        for key, actual in single.rule_actuals.items():
            assert sharded.rule_actuals.get(key, 0) >= actual


class TestServeLoopReplanning:
    """Drift-triggered re-planning through the serving layers."""

    def test_session_replans_between_batches(self):
        metrics = MetricsRegistry()
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), adaptive=True)
        session = LobsterSession(engine, metrics=metrics)

        def database(n_edges):
            db = session.create_database()
            db.add_facts("edge", [(i, i + 1) for i in range(n_edges)])
            return db

        # Steady small-graph traffic: one re-plan (base -> bucket), then
        # every batch reuses the bucket's plan.
        session.run_batch([database(3) for _ in range(3)], retain=False)
        after_small = metrics.counter("session.replans").value
        assert after_small == 1
        # Traffic shape shifts by orders of magnitude: the session
        # transparently re-plans between batches.
        session.run_batch([database(300) for _ in range(2)], retain=False)
        assert metrics.counter("session.replans").value == after_small + 1
        assert metrics.counter("session.queries").value == 5

    def test_scheduler_replans_transparently(self):
        metrics = MetricsRegistry()
        engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache(), adaptive=True)
        scheduler = Scheduler(DevicePool(1), metrics=metrics)

        def request(n_edges, arrival):
            db = engine.create_database()
            db.add_facts("edge", [(i, i + 1) for i in range(n_edges)])
            return Request(engine, db, arrival_s=arrival)

        small = [request(3, 0.001 * i) for i in range(4)]
        big = [request(250, 0.001)]
        scheduler.run(small)
        replans_small = metrics.counter("session.replans").value
        assert replans_small >= 1
        report = scheduler.run(big)
        assert report.completed == 1
        assert metrics.counter("session.replans").value > replans_small
        # Served result matches a solo run of the same database shape.
        solo_engine = LobsterEngine(TC_PROGRAM, cache=ProgramCache())
        solo = solo_engine.create_database()
        solo.add_facts("edge", [(i, i + 1) for i in range(250)])
        solo_engine.run(solo)
        assert big[0].database.result("path").rows() == solo.result("path").rows()

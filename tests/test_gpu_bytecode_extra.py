"""Bytecode VM edge cases and the §5.2 fast/slow path split."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.gpu.bytecode import LOAD_COL, LOAD_CONST, BytecodeProgram, Instr, execute


def run(instrs, cols, n):
    return execute(BytecodeProgram(tuple(instrs)), cols, n)


class TestBytecodeVm:
    def test_load_const_broadcasts(self):
        out = run([Instr(LOAD_CONST, 7)], [], 4)
        assert out.tolist() == [7, 7, 7, 7]

    def test_float_const_dtype(self):
        out = run([Instr(LOAD_CONST, 0.5)], [], 2)
        assert out.dtype == np.float64

    def test_division_by_zero_yields_inf(self):
        cols = [np.array([1.0]), np.array([0.0])]
        out = run([Instr(LOAD_COL, 0), Instr(LOAD_COL, 1), Instr("div")], cols, 1)
        assert np.isinf(out[0])

    def test_mod_by_zero_is_zero_free(self):
        cols = [np.array([5]), np.array([0])]
        out = run([Instr(LOAD_COL, 0), Instr(LOAD_COL, 1), Instr("mod")], cols, 1)
        # numpy defines x % 0 = 0 with the error state silenced.
        assert out[0] == 0

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ExecutionError, match="unknown bytecode op"):
            run([Instr("frobnicate")], [], 1)

    def test_unbalanced_stack_rejected(self):
        with pytest.raises(ExecutionError, match="stack"):
            run([Instr(LOAD_CONST, 1), Instr(LOAD_CONST, 2)], [], 1)

    def test_logical_ops(self):
        cols = [np.array([1, 0, 1]), np.array([1, 1, 0])]
        both = run(
            [Instr(LOAD_COL, 0), Instr(LOAD_COL, 1), Instr("and")], cols, 3
        )
        assert both.tolist() == [True, False, False]

    def test_abs_and_neg(self):
        cols = [np.array([-3, 4])]
        out = run([Instr(LOAD_COL, 0), Instr("abs")], cols, 2)
        assert out.tolist() == [3, 4]
        out = run([Instr(LOAD_COL, 0), Instr("neg")], cols, 2)
        assert out.tolist() == [3, -4]

    def test_min_max(self):
        cols = [np.array([1, 5]), np.array([3, 2])]
        assert run(
            [Instr(LOAD_COL, 0), Instr(LOAD_COL, 1), Instr("min")], cols, 2
        ).tolist() == [1, 2]
        assert run(
            [Instr(LOAD_COL, 0), Instr(LOAD_COL, 1), Instr("max")], cols, 2
        ).tolist() == [3, 5]

    def test_stack_depth_accounting(self):
        program = BytecodeProgram(
            (
                Instr(LOAD_COL, 0),
                Instr(LOAD_CONST, 1),
                Instr("add"),
                Instr(LOAD_CONST, 2),
                Instr("mul"),
            )
        )
        assert program.max_stack_depth() == 2

"""The general ``top-k-proofs`` semiring — CPU baseline only.

The paper explicitly does *not* port general top-k-proofs to the device
(§3.5 "Limitations"); Scallop supports it on the CPU.  We mirror that
split: this semiring implements only the scalar interface used by the
Scallop baseline engine, and ``supports_device`` is False.

Tags are tuples of proofs; a proof is a frozenset of input fact ids.  ⊗
takes pairwise unions (dropping exclusion conflicts), ⊕ unions the proof
sets; both keep the ``k`` most likely proofs.  Probabilities are computed
by inclusion–exclusion over the (at most ``k``) retained proofs, which is
exact under input-fact independence.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .base import SATURATION_EPS, Provenance

Proof = frozenset
Tag = tuple  # tuple of Proof, sorted by descending probability


class TopKProofsProvenance(Provenance):
    """Scallop-style top-k proof tracking (scalar/CPU implementation)."""

    name = "top-k-proofs"
    supports_device = False
    is_differentiable = False

    def __init__(self, k: int = 3):
        super().__init__()
        self.k = int(k)

    # -- scalar interface ------------------------------------------------

    def scalar_one(self) -> Tag:
        return (Proof(),)

    def scalar_zero(self) -> Tag:
        return ()

    def scalar_input(self, fact_id: int) -> Tag:
        if fact_id < 0:
            return self.scalar_one()
        return (Proof([int(fact_id)]),)

    def _proof_prob(self, proof: Proof) -> float:
        prob = 1.0
        for fact in proof:
            prob *= float(self.input_probs[fact])
        return prob

    def _conflicting(self, proof: Proof) -> bool:
        seen: dict[int, int] = {}
        for fact in proof:
            group = int(self.exclusion_groups[fact])
            if group < 0:
                continue
            if group in seen and seen[group] != fact:
                return True
            seen[group] = fact
        return False

    def _top_k(self, proofs: set[Proof]) -> Tag:
        ranked = sorted(proofs, key=lambda p: (-self._proof_prob(p), sorted(p)))
        return tuple(ranked[: self.k])

    def scalar_otimes(self, a: Tag, b: Tag) -> Tag:
        merged: set[Proof] = set()
        for pa in a:
            for pb in b:
                union = pa | pb
                if not self._conflicting(union):
                    merged.add(union)
        return self._top_k(merged)

    def scalar_oplus(self, a: Tag, b: Tag) -> Tag:
        return self._top_k(set(a) | set(b))

    def scalar_improved(self, old: Tag, new: Tag) -> bool:
        return self.scalar_oplus(old, new) != tuple(old)

    def scalar_prob(self, tag: Tag) -> float:
        """Inclusion–exclusion over the retained proofs."""
        proofs = list(tag)
        if not proofs:
            return 0.0
        total = 0.0
        for r in range(1, len(proofs) + 1):
            for subset in combinations(proofs, r):
                union = Proof().union(*subset)
                if self._conflicting(union):
                    continue
                term = self._proof_prob(union)
                total += term if r % 2 == 1 else -term
        return float(min(max(total, 0.0), 1.0))

    def scalar_is_zero(self, tag: Tag) -> bool:
        return len(tag) == 0

    # -- vectorized interface: unsupported on the device -----------------

    def tag_dtype(self) -> np.dtype:  # pragma: no cover - guarded by engine
        raise NotImplementedError("top-k-proofs has no device implementation")

    def input_tags(self, fact_ids):  # pragma: no cover
        raise NotImplementedError("top-k-proofs has no device implementation")

    def one_tags(self, n):  # pragma: no cover
        raise NotImplementedError("top-k-proofs has no device implementation")

    def otimes(self, a, b):  # pragma: no cover
        raise NotImplementedError("top-k-proofs has no device implementation")

    def oplus_reduce(self, tags, segment_ids, nseg):  # pragma: no cover
        raise NotImplementedError("top-k-proofs has no device implementation")

    def merge_existing(self, old, new):  # pragma: no cover
        raise NotImplementedError("top-k-proofs has no device implementation")

    def prob(self, tags):  # pragma: no cover
        raise NotImplementedError("top-k-proofs has no device implementation")

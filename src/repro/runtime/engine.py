"""The Lobster engine facade — the library's main entry point.

Pipeline: Datalog source -> (parse, resolve, stratify) -> RAM -> APM ->
execution on the virtual device.  Existing Datalog-based neurosymbolic
programs run without modification; the reasoning mode is chosen by naming
a provenance semiring, exactly as in the paper.

Example
-------
>>> engine = LobsterEngine('''
...     rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
... ''', provenance="unit")
>>> db = engine.create_database()
>>> _ = db.add_facts("edge", [(0, 1), (1, 2)])
>>> result = engine.run(db)
>>> sorted(db.result("path").rows())
[(0, 1), (0, 2), (1, 2)]
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .batching import SAMPLE_VAR, batch_transform, prepend_sample
from .database import Database
from ..apm.compiler import ApmProgram, compile_ram
from ..apm.interpreter import DEFAULT_MAX_ITERATIONS, ApmInterpreter
from ..apm.optimizer import optimize
from ..datalog.parser import parse
from ..datalog.resolver import resolve
from ..errors import LobsterError
from ..gpu.device import DeviceProfile, VirtualDevice
from ..provenance import registry
from ..provenance.base import Provenance
from ..ram.compile_datalog import compile_program


@dataclass
class OptimizationConfig:
    """Toggles for the paper's optimizations (the Fig. 10 ablation arms)."""

    buffer_reuse: bool = True
    static_indices: bool = True
    stratum_scheduling: bool = True
    apm_passes: bool = True

    @classmethod
    def none(cls) -> "OptimizationConfig":
        return cls(False, False, False, False)


@dataclass
class ExecutionResult:
    """Timing and profiling information for one engine run."""

    wall_seconds: float
    #: Modeled device overheads (host<->device transfers + allocation).
    simulated_overhead_seconds: float
    iterations: int
    profile: DeviceProfile

    @property
    def total_seconds(self) -> float:
        return self.wall_seconds + self.simulated_overhead_seconds


class LobsterEngine:
    """Compile once, run against many databases."""

    def __init__(
        self,
        source: str,
        provenance: str | Provenance = "unit",
        device: VirtualDevice | None = None,
        optimizations: OptimizationConfig | None = None,
        batched: bool = False,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        **provenance_kwargs,
    ):
        self.source = source
        self.batched = batched
        self.optimizations = optimizations or OptimizationConfig()
        self.max_iterations = max_iterations
        if isinstance(provenance, Provenance):
            import copy

            template = copy.deepcopy(provenance)
            self._provenance_factory = lambda: copy.deepcopy(template)
            self.provenance_name = provenance.name
            self._provenance_kwargs = {}
        else:
            self.provenance_name = provenance
            self._provenance_kwargs = provenance_kwargs
            self._provenance_factory = lambda: registry.create(
                provenance, **provenance_kwargs
            )
        probe = self._provenance_factory()
        if not probe.supports_device:
            raise LobsterError(
                f"provenance {probe.name!r} has no device implementation "
                "(the paper's §3.5 limitation); use the Scallop baseline"
            )

        ast_program = parse(source)
        self._batch_fact_rows: dict[str, list[tuple]] = {}
        if batched:
            ast_program = batch_transform(ast_program)
            # Fact blocks stay sample-relative: pull them out before
            # resolution (their arity predates the sample column) and
            # replicate them per sample at load time.
            from ..datalog.resolver import _resolve_fact_blocks
            from ..interning import SymbolTable

            symbols = SymbolTable()
            self._batch_fact_rows = _resolve_fact_blocks(
                ast_program.fact_blocks, symbols
            )
            ast_program.fact_blocks = []
            self.resolved = resolve(ast_program, symbols)
        else:
            self.resolved = resolve(ast_program)
        self.ram = compile_program(self.resolved)
        self.apm: ApmProgram = compile_ram(self.ram)
        if self.optimizations.apm_passes:
            self.apm = optimize(self.apm)
        self.device = device or VirtualDevice(
            reuse_buffers=self.optimizations.buffer_reuse
        )

    # ------------------------------------------------------------------

    def create_database(self) -> Database:
        """A fresh database with this program's schemas and a fresh
        provenance instance (tags reference per-run input facts)."""
        database = Database(dict(self.resolved.schemas), self._provenance_factory())
        for predicate, rows in self.resolved.facts.items():
            if self.batched:
                continue  # fact blocks replicated per sample in add_batch
            database.add_facts(predicate, rows)
        return database

    def add_batch_facts(
        self,
        database: Database,
        name: str,
        sample_id: int,
        rows: list[tuple],
        probs=None,
        exclusive: bool = False,
    ) -> np.ndarray:
        """Register facts for one sample of a batched run."""
        if not self.batched:
            raise LobsterError("engine was not constructed with batched=True")
        return database.add_facts(
            name, prepend_sample(rows, sample_id), probs, exclusive
        )

    def replicate_fact_blocks(self, database: Database, n_samples: int) -> None:
        """Copy the program's inline fact blocks into every sample."""
        for predicate, rows in self._batch_fact_rows.items():
            for sample_id in range(n_samples):
                database.add_facts(predicate, prepend_sample(rows, sample_id))

    # ------------------------------------------------------------------

    def run(self, database: Database) -> ExecutionResult:
        """Execute the program to fix point against ``database``."""
        self.device.profile.reset()
        interpreter = ApmInterpreter(
            self.device,
            enable_static_reuse=self.optimizations.static_indices,
            enable_buffer_reuse=self.optimizations.buffer_reuse,
            enable_stratum_scheduling=self.optimizations.stratum_scheduling,
            max_iterations=self.max_iterations,
        )
        start = time.perf_counter()
        interpreter.run(self.apm, database)
        wall = time.perf_counter() - start
        profile = self.device.profile
        overhead = profile.transfer_seconds + (
            0.0 if self.optimizations.buffer_reuse else profile.alloc_seconds
        )
        return ExecutionResult(wall, overhead, interpreter.iterations_run, profile)

    # ------------------------------------------------------------------

    def query(self, database: Database, name: str) -> list[tuple]:
        return database.result(name).rows()

    def query_probs(self, database: Database, name: str) -> dict[tuple, float]:
        rows, probs = database.result_probs(name)
        return {row: float(p) for row, p in zip(rows, probs)}

    def query_by_sample(self, database: Database, name: str) -> dict[int, dict[tuple, float]]:
        """Disaggregate a batched result into per-sample databases."""
        if not self.batched:
            raise LobsterError("engine was not constructed with batched=True")
        rows, probs = database.result_probs(name)
        out: dict[int, dict[tuple, float]] = {}
        for row, prob in zip(rows, probs):
            out.setdefault(int(row[0]), {})[tuple(row[1:])] = float(prob)
        return out

    def backward(
        self, database: Database, name: str, grad_out: dict[tuple, float]
    ) -> np.ndarray:
        """Back-propagate loss gradients on a relation's fact probabilities
        to the input facts; returns d(loss)/d(input_probs)."""
        provenance = database.provenance
        if not provenance.is_differentiable:
            raise LobsterError(f"provenance {provenance.name!r} is not differentiable")
        table = database.result(name)
        rows = table.rows()
        grads = np.array([grad_out.get(row, 0.0) for row in rows], dtype=np.float64)
        grad_in = np.zeros(database.n_input_facts, dtype=np.float64)
        provenance.backward(table.tags, grads, grad_in)
        return grad_in

"""Baseline engine behaviour tests (beyond the cross-engine equivalence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ExactProofsProvenance,
    FVLogEngine,
    ProbLogEngine,
    ScallopInterpreter,
    SouffleEngine,
)
from repro.baselines.problog import _wmc
from repro.errors import EvaluationTimeout, LobsterError

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."


class TestScallopInterpreter:
    def test_negation(self):
        engine = ScallopInterpreter(
            "rel ok(x) :- node(x), not bad(x).", provenance="unit"
        )
        db = engine.create_database()
        db.add_facts("node", [(1,), (2,)])
        db.add_facts("bad", [(2,)])
        engine.run(db)
        assert set(db.rows("ok")) == {(1,)}

    def test_comparisons_and_arithmetic(self):
        engine = ScallopInterpreter(
            "rel double(x + x) :- v(x), x >= 2.", provenance="unit"
        )
        db = engine.create_database()
        db.add_facts("v", [(1,), (2,), (3,)])
        engine.run(db)
        assert set(db.rows("double")) == {(4,), (6,)}

    def test_timeout_raises(self):
        engine = ScallopInterpreter(TC, provenance="unit", timeout_seconds=0.0)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        with pytest.raises(EvaluationTimeout):
            engine.run(db)

    def test_topk_proofs_tracked(self):
        engine = ScallopInterpreter(TC, provenance="top-k-proofs", k=3)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (0, 2)], probs=[0.5, 0.5, 0.3])
        engine.run(db)
        tag = db.rows("path")[(0, 2)]
        assert len(tag) == 2  # direct edge + two-hop proof

    def test_fact_blocks_loaded(self):
        engine = ScallopInterpreter("rel e = {(1, 2)}\nrel p(x, y) :- e(x, y).")
        db = engine.create_database()
        engine.run(db)
        assert set(db.rows("p")) == {(1, 2)}


class TestSouffleEngine:
    def test_indexed_join_correct(self, rng):
        from tests.conftest import brute_force_closure, random_digraph

        edges = random_digraph(rng, 20, 50)
        engine = SouffleEngine(TC)
        db = engine.create_database()
        db.setdefault("edge", set()).update(edges)
        engine.run(db)
        assert db["path"] == brute_force_closure(edges)

    def test_timeout(self):
        engine = SouffleEngine(TC, timeout_seconds=0.0)
        db = engine.create_database()
        db.setdefault("edge", set()).update([(0, 1)])
        with pytest.raises(EvaluationTimeout):
            engine.run(db)

    def test_negation(self):
        engine = SouffleEngine("rel ok(x) :- node(x), not bad(x).")
        db = engine.create_database()
        db.setdefault("node", set()).update([(1,), (2,)])
        db.setdefault("bad", set()).update([(2,)])
        engine.run(db)
        assert db["ok"] == {(1,)}


class TestProbLog:
    def test_wmc_simple_disjunction(self):
        probs = np.array([0.5, 0.5])
        groups = np.array([-1, -1])
        proofs = [frozenset([0]), frozenset([1])]
        assert _wmc(proofs, probs, groups) == pytest.approx(0.75)

    def test_wmc_exclusion_groups(self):
        probs = np.array([0.6, 0.4])
        groups = np.array([0, 0])  # mutually exclusive outcomes
        proofs = [frozenset([0]), frozenset([1])]
        assert _wmc(proofs, probs, groups) == pytest.approx(1.0)

    def test_wmc_empty_proof_is_certain(self):
        assert _wmc([frozenset()], np.zeros(0), np.zeros(0)) == 1.0

    def test_exact_provenance_subsumption(self):
        provenance = ExactProofsProvenance()
        provenance.setup(np.array([0.5, 0.5]))
        a = provenance.scalar_input(0)
        ab = provenance.scalar_otimes(a, provenance.scalar_input(1))
        merged = provenance.scalar_oplus(a, ab)
        # {0} subsumes {0,1}: the superset proof is redundant.
        assert merged == (frozenset([0]),)

    def test_query_prob_missing_row(self):
        engine = ProbLogEngine(TC, timeout_seconds=10)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)], probs=[0.5])
        engine.run(db)
        assert engine.query_prob(db, "path", (5, 6)) == 0.0


class TestFVLog:
    def test_discrete_only(self):
        engine = FVLogEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        engine.run(db)
        assert db.result("path").rows() == [(0, 1)]

    def test_no_optimizations(self):
        engine = FVLogEngine(TC)
        assert not engine.optimizations.buffer_reuse
        assert not engine.optimizations.static_indices
        assert not engine.optimizations.stratum_scheduling
        assert not engine.optimizations.apm_passes

"""Runtime: columnar tables, stored relations, databases, engine facade,
program cache, and multi-query serving sessions."""

from .batching import SAMPLE_VAR, batch_transform, prepend_sample
from .cache import (
    CompiledProgram,
    OptimizationConfig,
    ProgramCache,
    compile_source,
    default_cache,
)
from .database import Database
from .engine import ExecutionResult, LobsterEngine
from .relation import StoredRelation
from .session import LobsterSession, SessionReport, SubmittedQuery
from .table import Table

__all__ = [
    "CompiledProgram",
    "Database",
    "ExecutionResult",
    "LobsterEngine",
    "LobsterSession",
    "OptimizationConfig",
    "ProgramCache",
    "SAMPLE_VAR",
    "SessionReport",
    "StoredRelation",
    "SubmittedQuery",
    "Table",
    "batch_transform",
    "compile_source",
    "default_cache",
    "prepend_sample",
]

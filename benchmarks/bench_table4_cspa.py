"""Table 4: CSPA runtimes — Lobster vs FVLog on httpd/linux/postgres.

The paper reports the two engines approximately matched, with Lobster
holding a modest geometric-mean advantage (1.27x) attributed to APM-level
optimizations.
"""

from __future__ import annotations

import pytest

from repro import LobsterEngine
from repro.baselines import FVLogEngine
from repro.workloads.analytics import CSPA, cspa_instance

from _harness import record, print_table, speedup, timed

SUBJECTS = ["httpd", "linux", "postgres"]


def load(engine, subject):
    facts = cspa_instance(subject)
    db = engine.create_database()
    db.add_facts("assign", facts["assign"])
    db.add_facts("dereference", facts["dereference"])
    return db


@pytest.fixture(scope="module")
def results():
    rows = {}
    for subject in SUBJECTS:
        lobster = LobsterEngine(CSPA, provenance="unit")
        ldb = load(lobster, subject)
        fvlog = FVLogEngine(CSPA)
        fdb = load(fvlog, subject)
        rows[subject] = (
            timed(lambda: lobster.run(ldb)),
            timed(lambda: fvlog.run(fdb)),
        )
    return rows


def test_table4_cspa(results, benchmark):
    def check():
        table = [
            [subject, lobster.label, fvlog.label, speedup(fvlog, lobster)]
            for subject, (lobster, fvlog) in results.items()
        ]
        print_table(
            "Table 4 — CSPA runtime",
            ["dataset", "lobster", "fvlog", "lobster adv."],
            table,
        )
        # Shape: approximately matched with a Lobster geomean edge.
        geomean = 1.0
        for lobster, fvlog in results.values():
            geomean *= fvlog.seconds / lobster.seconds
        geomean **= 1.0 / len(results)
        print(f"CSPA geomean Lobster advantage: {geomean:.2f}x (paper: 1.27x)")
        assert geomean > 0.9


    record(benchmark, check)

def test_table4_benchmark_cspa_lobster(benchmark):
    def run():
        engine = LobsterEngine(CSPA, provenance="unit")
        db = load(engine, "httpd")
        engine.run(db)

    benchmark.pedantic(run, rounds=2, iterations=1)

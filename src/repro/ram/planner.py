"""Query planning heuristics for the Datalog -> RAM lowering.

Lobster reuses Scallop's front-end and query planner (§5); the planner
here implements the standard greedy choices those systems make:

* **atom ordering** — start from the first body atom, then repeatedly pick
  the atom sharing the most variables with the already-bound set (breaking
  ties by original order), so joins stay selective and products are a last
  resort;
* **early comparisons** — a comparison is applied as soon as its variables
  are bound, pushing selections below joins.
"""

from __future__ import annotations

from ..datalog import ast


def term_vars(term: ast.Term) -> set[str]:
    if isinstance(term, ast.Var):
        return {term.name}
    if isinstance(term, ast.BinOp):
        return term_vars(term.lhs) | term_vars(term.rhs)
    if isinstance(term, ast.Neg):
        return term_vars(term.operand)
    return set()


def atom_vars(atom: ast.Atom) -> set[str]:
    out: set[str] = set()
    for arg in atom.args:
        out |= term_vars(arg)
    return out


def order_atoms(atoms: list[ast.Atom]) -> list[ast.Atom]:
    """Greedy join-order heuristic."""
    if len(atoms) <= 1:
        return list(atoms)
    remaining = list(atoms)
    ordered = [remaining.pop(0)]
    bound = atom_vars(ordered[0])
    while remaining:
        best_index = 0
        best_score = -1
        for index, atom in enumerate(remaining):
            score = len(atom_vars(atom) & bound)
            if score > best_score:
                best_score = score
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= atom_vars(chosen)
    return ordered


def ready_comparisons(
    comparisons: list[ast.Comparison], bound: set[str], applied: set[int]
) -> list[int]:
    """Indices of not-yet-applied comparisons whose variables are bound."""
    ready: list[int] = []
    for index, comparison in enumerate(comparisons):
        if index in applied:
            continue
        needed = term_vars(comparison.lhs) | term_vars(comparison.rhs)
        if needed <= bound:
            ready.append(index)
    return ready

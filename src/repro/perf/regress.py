"""Regression gate: compare a fresh suite record against a baseline.

The gate answers one question per benchmark: *is the new measurement
slower than the baseline by more than the noise can explain?*  It is
CI-adjusted in the SPEC sense — the slowdown ratio is taken at its
**optimistic** end (new mean minus its confidence half-width over
baseline mean plus its half-width), so a regression only fires when even
the most charitable reading of both intervals leaves the benchmark more
than ``threshold``× slower.  Same-machine re-runs of the same commit
pass (their ratio intervals straddle 1), while a genuine 2× slowdown
fails at the default threshold.

Explicit non-comparisons instead of silent skips:

* a benchmark absent from the baseline is verdict ``new`` (first run of
  a fresh benchmark must not fail CI — commit the emitted record and it
  becomes the baseline);
* a baseline benchmark absent from the current run is ``missing``
  (informational: a filter or rename);
* wall-clock (``unit == "s"``) benchmarks are verdict ``foreign-host``
  when the two records' host fingerprints differ — only the modeled
  simulator clock is comparable across machines;
* non-time benchmarks (``unit == "fraction"``: accuracies, coverage) are
  verdict ``informational`` — recorded for trends, never gated;
* wall-clock cells where both sides run under ``WALL_GATE_FLOOR_S`` are
  verdict ``informational`` — a 2 ms measurement swings several× on
  scheduler and cache state alone, so judging it is judging the host.
  The deterministic ``modeled_s`` clock is gated at any scale.

Also usable as a CLI (CI exercises both directions)::

    python -m repro.perf.regress BASELINE.json CURRENT.json
    python -m repro.perf.regress BASELINE.json CURRENT.json --inject 2.0
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

from .record import SuiteRecord, host_key, load_record
from .stats import Ratio, ratio_of, summarize

__all__ = [
    "GateReport",
    "Verdict",
    "WALL_GATE_FLOOR_S",
    "check_record",
    "check_records",
]

#: A benchmark regresses when its CI-adjusted slowdown exceeds this.
DEFAULT_THRESHOLD = 1.25

#: Wall-clock cells where baseline and current means are both below this
#: are too fast to gate meaningfully (informational instead).
WALL_GATE_FLOOR_S = 0.010


@dataclass
class Verdict:
    """One benchmark's gate outcome."""

    benchmark: str
    #: ok | regressed | improved | new | missing | foreign-host |
    #: unmeasured | informational
    status: str
    #: Slowdown ratio current/baseline (value > 1 means slower), with the
    #: propagated interval; None for non-comparisons.
    slowdown: Ratio | None = None
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "regressed"

    def render(self) -> str:
        ratio = f" {self.slowdown.label()}" if self.slowdown else ""
        detail = f" — {self.detail}" if self.detail else ""
        return f"{self.status:13s} {self.benchmark}{ratio}{detail}"


@dataclass
class GateReport:
    """All verdicts for one suite comparison."""

    suite: str
    threshold: float
    verdicts: list[Verdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not any(v.failed for v in self.verdicts)

    @property
    def regressions(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.failed]

    def render(self) -> str:
        header = (
            f"regression gate [{self.suite}] threshold {self.threshold:.2f}x"
            f" -> {'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join([header] + [
            "  " + verdict.render() for verdict in self.verdicts
        ])


def check_record(
    baseline: SuiteRecord,
    current: SuiteRecord,
    threshold: float = DEFAULT_THRESHOLD,
    slowdown_factor: float = 1.0,
) -> GateReport:
    """Gate ``current`` against ``baseline``.

    ``slowdown_factor`` scales the current samples before comparison —
    the fault-injection hook CI uses to prove the gate *can* fail (an
    injected 2× slowdown must turn a passing comparison into a failing
    one without touching any real measurement).
    """
    report = GateReport(suite=current.suite, threshold=threshold)
    same_host = host_key(baseline.environment) == host_key(
        current.environment
    )
    for bench in current.benchmarks:
        base = baseline.get(bench.name)
        if base is None:
            report.verdicts.append(
                Verdict(bench.name, "new", detail="no baseline entry")
            )
            continue
        if not bench.ok or not base.ok:
            report.verdicts.append(
                Verdict(
                    bench.name,
                    "unmeasured",
                    detail=f"status baseline={base.status} current={bench.status}",
                )
            )
            continue
        if bench.unit not in ("s", "modeled_s"):
            # Quality metrics (unit "fraction") ride along in records for
            # trend-watching but are not time, so a slowdown gate makes
            # no sense — report them without judging.
            report.verdicts.append(
                Verdict(
                    bench.name,
                    "informational",
                    detail=f"unit {bench.unit!r} is not gated",
                )
            )
            continue
        if bench.unit == "s" and not same_host:
            report.verdicts.append(
                Verdict(
                    bench.name,
                    "foreign-host",
                    detail="wall clock not comparable across machines",
                )
            )
            continue
        base_stats = base.stats()
        cur_stats = bench.stats()
        if (
            bench.unit == "s"
            and base_stats.mean < WALL_GATE_FLOOR_S
            and cur_stats.mean < WALL_GATE_FLOOR_S
        ):
            report.verdicts.append(
                Verdict(
                    bench.name,
                    "informational",
                    detail=(
                        f"wall time below the {WALL_GATE_FLOOR_S * 1e3:.0f}ms"
                        " gate floor"
                    ),
                )
            )
            continue
        if slowdown_factor != 1.0:
            cur_stats = summarize(
                [x * slowdown_factor for x in bench.samples]
            )
        # Slowdown = current/baseline; ratio_of propagates both CIs.
        slowdown = ratio_of(cur_stats, base_stats)
        if not slowdown.ok:
            report.verdicts.append(
                Verdict(
                    bench.name, "unmeasured", slowdown, "zero-mean samples"
                )
            )
            continue
        # CI-adjusted: gate on the optimistic (lower) end of the
        # slowdown interval — noise never fails the gate on its own.
        optimistic = slowdown.lo if slowdown.lo is not None else slowdown.value
        if optimistic > threshold:
            status = "regressed"
            detail = (
                f"≥{optimistic:.2f}x slower than baseline even at the "
                f"optimistic CI bound (threshold {threshold:.2f}x)"
            )
        elif slowdown.hi is not None and slowdown.hi < 1.0 / threshold:
            status = "improved"
            detail = "faster than baseline beyond the CI"
        else:
            status = "ok"
            detail = ""
        report.verdicts.append(Verdict(bench.name, status, slowdown, detail))
    current_names = {bench.name for bench in current.benchmarks}
    for base in baseline.benchmarks:
        if base.name not in current_names:
            report.verdicts.append(
                Verdict(base.name, "missing", detail="not in current run")
            )
    return report


def check_records(
    baselines: dict[str, SuiteRecord],
    currents: dict[str, SuiteRecord],
    threshold: float = DEFAULT_THRESHOLD,
    slowdown_factor: float = 1.0,
) -> list[GateReport]:
    """Gate every current suite that has a baseline; suites without one
    produce a single all-``new`` report (the explicit no-baseline path)."""
    reports = []
    for suite in sorted(currents):
        current = currents[suite]
        baseline = baselines.get(suite)
        if baseline is None:
            report = GateReport(suite=suite, threshold=threshold)
            report.verdicts = [
                Verdict(bench.name, "new", detail="no baseline record")
                for bench in current.benchmarks
            ]
            reports.append(report)
            continue
        reports.append(
            check_record(baseline, current, threshold, slowdown_factor)
        )
    return reports


def _load_side(path: Path) -> dict[str, SuiteRecord]:
    """A side of the comparison: one record file, or a directory of
    ``BENCH_*.json`` records."""
    path = Path(path)
    if path.is_dir():
        records = {}
        for candidate in sorted(path.glob("BENCH_*.json")):
            record = load_record(candidate)
            records[record.suite] = record
        return records
    record = load_record(path)
    return {record.suite: record}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate current BENCH records against a baseline."
    )
    parser.add_argument("baseline", type=Path, help="record file or dir")
    parser.add_argument("current", type=Path, help="record file or dir")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="CI-adjusted slowdown that counts as a regression",
    )
    parser.add_argument(
        "--inject", type=float, default=1.0, metavar="FACTOR",
        help="multiply current samples by FACTOR (gate self-test)",
    )
    args = parser.parse_args(argv)
    reports = check_records(
        _load_side(args.baseline),
        _load_side(args.current),
        threshold=args.threshold,
        slowdown_factor=args.inject,
    )
    if not reports:
        print("no current records found", file=sys.stderr)
        return 2
    ok = True
    for report in reports:
        print(report.render())
        ok = ok and report.passed
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Name/type resolution, safety checking, and rule normalization.

Converts a parsed :class:`~repro.datalog.ast.ProgramAst` into a
:class:`ResolvedProgram`:

* relation schemas are computed (declared types resolved through aliases;
  undeclared relations inferred, with float columns propagated to a fixed
  point through rule heads);
* bodies are desugared to DNF and split into positive atoms, negated atoms,
  and comparisons;
* string constants are interned to int64 symbol ids;
* range-restriction (safety) is enforced: every head/negation/comparison
  variable must be bound by a positive body atom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import ast
from .desugar import desugar_rules
from .stratify import stratify
from ..errors import ResolutionError
from ..interning import SymbolTable

INT = np.dtype(np.int64)
FLOAT = np.dtype(np.float64)

_FLOAT_TYPE_NAMES = {"f32", "f64", "float", "Float"}
_SYMBOL_TYPE_NAMES = {"String", "str", "Symbol", "string"}


@dataclass
class ResolvedRule:
    head: str
    head_terms: tuple[ast.Term, ...]
    positives: list[ast.Atom]
    negatives: list[ast.Atom]
    comparisons: list[ast.Comparison]

    def body_predicates(self) -> list[tuple[str, bool]]:
        out = [(atom.predicate, False) for atom in self.positives]
        out += [(atom.predicate, True) for atom in self.negatives]
        return out


@dataclass
class Stratum:
    predicates: list[str]
    rules: list[ResolvedRule]
    recursive: bool


@dataclass
class ResolvedProgram:
    schemas: dict[str, tuple[np.dtype, ...]]
    rules: list[ResolvedRule]
    strata: list[Stratum]
    queries: list[str]
    facts: dict[str, list[tuple]]
    symbols: SymbolTable
    edb_predicates: set[str] = field(default_factory=set)
    idb_predicates: set[str] = field(default_factory=set)

    def arity(self, predicate: str) -> int:
        return len(self.schemas[predicate])


def resolve(program: ast.ProgramAst, symbols: SymbolTable | None = None) -> ResolvedProgram:
    symbols = symbols if symbols is not None else SymbolTable()

    aliases = _resolve_aliases(program.type_aliases)
    schemas: dict[str, tuple[np.dtype, ...]] = {}
    for decl in program.relation_decls:
        dtypes = tuple(_dtype_of(aliases.get(t, t)) for t in decl.arg_types)
        schemas[decl.name] = dtypes

    flat = desugar_rules(program.rules)
    rules: list[ResolvedRule] = []
    for head, body in flat:
        positives = [lit for lit in body if isinstance(lit, ast.Atom) and not lit.negated]
        negatives = [lit for lit in body if isinstance(lit, ast.Atom) and lit.negated]
        comparisons = [lit for lit in body if isinstance(lit, ast.Comparison)]
        head_interned = ast.Atom(head.predicate, tuple(_intern(t, symbols) for t in head.args))
        positives = [_intern_atom(a, symbols) for a in positives]
        negatives = [_intern_atom(a, symbols) for a in negatives]
        comparisons = [
            ast.Comparison(c.op, _intern(c.lhs, symbols), _intern(c.rhs, symbols))
            for c in comparisons
        ]
        rule = ResolvedRule(
            head_interned.predicate, head_interned.args, positives, negatives, comparisons
        )
        _check_safety(rule)
        rules.append(rule)

    facts = _resolve_fact_blocks(program.fact_blocks, symbols)

    _infer_schemas(schemas, rules, facts)

    idb = {rule.head for rule in rules}
    referenced = {
        atom.predicate for rule in rules for atom in rule.positives + rule.negatives
    }
    edb = (referenced | set(facts)) - idb

    dependencies = [
        (pred, rule.head, negated)
        for rule in rules
        for pred, negated in rule.body_predicates()
    ]
    strata_preds = stratify(sorted(idb), dependencies)

    strata: list[Stratum] = []
    for predicates in strata_preds:
        pred_set = set(predicates)
        stratum_rules = [rule for rule in rules if rule.head in pred_set]
        recursive = any(
            pred in pred_set
            for rule in stratum_rules
            for pred, _ in rule.body_predicates()
        )
        strata.append(Stratum(predicates, stratum_rules, recursive))

    queries = [q.predicate for q in program.queries]
    if not queries:
        queries = sorted(idb)

    return ResolvedProgram(
        schemas=schemas,
        rules=rules,
        strata=strata,
        queries=queries,
        facts=facts,
        symbols=symbols,
        edb_predicates=edb,
        idb_predicates=idb,
    )


# ---------------------------------------------------------------------------


def _resolve_aliases(aliases: list[ast.TypeAlias]) -> dict[str, str]:
    mapping = {alias.name: alias.base for alias in aliases}
    resolved: dict[str, str] = {}
    for name in mapping:
        seen = {name}
        base = mapping[name]
        while base in mapping:
            if base in seen:
                raise ResolutionError(f"cyclic type alias through {name!r}")
            seen.add(base)
            base = mapping[base]
        resolved[name] = base
    return resolved


def _dtype_of(type_name: str) -> np.dtype:
    if type_name in _FLOAT_TYPE_NAMES:
        return FLOAT
    if type_name in _SYMBOL_TYPE_NAMES:
        return INT
    # All integer widths live in int64 registers on the device.
    return INT


def _intern(term: ast.Term, symbols: SymbolTable) -> ast.Term:
    if isinstance(term, ast.StringConst):
        return ast.IntConst(symbols.intern(term.value))
    if isinstance(term, ast.BinOp):
        return ast.BinOp(term.op, _intern(term.lhs, symbols), _intern(term.rhs, symbols))
    if isinstance(term, ast.Neg):
        return ast.Neg(_intern(term.operand, symbols))
    return term


def _intern_atom(atom: ast.Atom, symbols: SymbolTable) -> ast.Atom:
    return ast.Atom(atom.predicate, tuple(_intern(t, symbols) for t in atom.args), atom.negated)


def _resolve_fact_blocks(
    blocks: list[ast.FactBlock], symbols: SymbolTable
) -> dict[str, list[tuple]]:
    facts: dict[str, list[tuple]] = {}
    for block in blocks:
        rows = facts.setdefault(block.predicate, [])
        for fact in block.facts:
            row = []
            for term in fact:
                term = _intern(term, symbols)
                if isinstance(term, ast.IntConst):
                    row.append(int(term.value))
                elif isinstance(term, ast.FloatConst):
                    row.append(float(term.value))
                elif isinstance(term, ast.Neg) and isinstance(term.operand, ast.IntConst):
                    row.append(-int(term.operand.value))
                else:
                    raise ResolutionError(
                        f"fact block for {block.predicate!r} must contain constants"
                    )
            rows.append(tuple(row))
    return facts


def _check_safety(rule: ResolvedRule) -> None:
    bound: set[str] = set()
    for atom in rule.positives:
        for term in atom.args:
            bound |= _vars_of(term)
    for term in rule.head_terms:
        missing = _vars_of(term) - bound
        if missing:
            raise ResolutionError(
                f"unsafe rule for {rule.head!r}: head variables {sorted(missing)} "
                "not bound by a positive body atom"
            )
    for atom in rule.negatives:
        for term in atom.args:
            missing = _vars_of(term) - bound
            if missing:
                raise ResolutionError(
                    f"unsafe negation of {atom.predicate!r}: variables "
                    f"{sorted(missing)} unbound"
                )
    for comparison in rule.comparisons:
        missing = (_vars_of(comparison.lhs) | _vars_of(comparison.rhs)) - bound
        if missing:
            raise ResolutionError(
                f"comparison in rule for {rule.head!r} uses unbound variables "
                f"{sorted(missing)}"
            )


def _vars_of(term: ast.Term) -> set[str]:
    if isinstance(term, ast.Var):
        return {term.name}
    if isinstance(term, ast.BinOp):
        return _vars_of(term.lhs) | _vars_of(term.rhs)
    if isinstance(term, ast.Neg):
        return _vars_of(term.operand)
    return set()


def _infer_schemas(
    schemas: dict[str, tuple[np.dtype, ...]],
    rules: list[ResolvedRule],
    facts: dict[str, list[tuple]],
) -> None:
    """Fill in schemas for undeclared relations; propagate float columns."""

    def ensure(pred: str, arity: int) -> None:
        existing = schemas.get(pred)
        if existing is None:
            schemas[pred] = tuple([INT] * arity)
        elif len(existing) != arity:
            raise ResolutionError(
                f"relation {pred!r} used with arity {arity}, declared {len(existing)}"
            )

    for rule in rules:
        ensure(rule.head, len(rule.head_terms))
        for atom in rule.positives + rule.negatives:
            ensure(atom.predicate, len(atom.args))
    for pred, rows in facts.items():
        if rows:
            ensure(pred, len(rows[0]))
            if any(isinstance(v, float) for row in rows for v in row):
                schemas[pred] = tuple(
                    FLOAT if any(isinstance(row[j], float) for row in rows) else dt
                    for j, dt in enumerate(schemas[pred])
                )

    # Propagate float-ness through rule heads to a fixed point.
    changed = True
    while changed:
        changed = False
        for rule in rules:
            var_types: dict[str, np.dtype] = {}
            for atom in rule.positives:
                dtypes = schemas[atom.predicate]
                for term, dtype in zip(atom.args, dtypes):
                    if isinstance(term, ast.Var) and dtype == FLOAT:
                        var_types[term.name] = FLOAT
            head_dtypes = list(schemas[rule.head])
            for j, term in enumerate(rule.head_terms):
                if _term_is_float(term, var_types) and head_dtypes[j] != FLOAT:
                    head_dtypes[j] = FLOAT
                    changed = True
            schemas[rule.head] = tuple(head_dtypes)


def _term_is_float(term: ast.Term, var_types: dict[str, np.dtype]) -> bool:
    if isinstance(term, ast.FloatConst):
        return True
    if isinstance(term, ast.Var):
        # ``is`` matters: np.dtype(None) equals float64, so a missing entry
        # must not compare equal to FLOAT.
        return var_types.get(term.name) is FLOAT
    if isinstance(term, ast.BinOp):
        if term.op == "/":
            return True
        return _term_is_float(term.lhs, var_types) or _term_is_float(term.rhs, var_types)
    if isinstance(term, ast.Neg):
        return _term_is_float(term.operand, var_types)
    return False

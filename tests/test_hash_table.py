"""Property tests for the open-addressing hash index against brute force."""

from __future__ import annotations

from collections import defaultdict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.hash_table import HashIndex

keys = st.integers(min_value=0, max_value=30)


def brute_force_matches(build_rows, probe_rows, width):
    by_key = defaultdict(list)
    for index, row in enumerate(build_rows):
        by_key[row[:width]].append(index)
    return sorted(
        (i, j) for i, row in enumerate(probe_rows) for j in by_key.get(row[:width], [])
    )


@given(
    st.lists(st.tuples(keys, keys), max_size=80),
    st.lists(st.tuples(keys, keys), max_size=40),
    st.integers(min_value=1, max_value=2),
)
@settings(max_examples=60, deadline=None)
def test_probe_matches_brute_force(build_rows, probe_rows, width):
    build_cols = [
        np.array([r[0] for r in build_rows], dtype=np.int64),
        np.array([r[1] for r in build_rows], dtype=np.int64),
    ]
    probe_cols = [
        np.array([r[0] for r in probe_rows], dtype=np.int64),
        np.array([r[1] for r in probe_rows], dtype=np.int64),
    ]
    index = HashIndex(build_cols, width)
    probe_ids, build_ids, counts = index.probe(probe_cols[:width])
    got = sorted(zip(probe_ids.tolist(), build_ids.tolist()))
    assert got == brute_force_matches(build_rows, probe_rows, width)
    expected_counts = defaultdict(int)
    for i, _ in got:
        expected_counts[i] += 1
    assert counts.tolist() == [expected_counts[i] for i in range(len(probe_rows))]


def test_heavy_duplicates_are_cheap():
    """A single repeated key must not degrade build (CSR group layout)."""
    n = 20_000
    cols = [np.zeros(n, dtype=np.int64), np.arange(n, dtype=np.int64)]
    index = HashIndex(cols, 1)
    probe_ids, build_ids, counts = index.probe([np.array([0, 1])])
    assert counts.tolist() == [n, 0]
    assert sorted(build_ids.tolist()) == list(range(n))


def test_count_only():
    index = HashIndex([np.array([1, 1, 2])], 1)
    assert index.count([np.array([1, 2, 3])]).tolist() == [2, 1, 0]


def test_empty_build_table():
    index = HashIndex([np.zeros(0, dtype=np.int64)], 1)
    probe_ids, build_ids, counts = index.probe([np.array([1, 2])])
    assert len(probe_ids) == 0
    assert counts.tolist() == [0, 0]


def test_empty_probe():
    index = HashIndex([np.array([1, 2])], 1)
    probe_ids, build_ids, counts = index.probe([np.zeros(0, dtype=np.int64)])
    assert len(probe_ids) == 0 and len(counts) == 0


def test_nbytes_positive():
    index = HashIndex([np.array([1, 2, 3])], 1)
    assert index.nbytes > 0

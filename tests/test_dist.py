"""Sharded multi-device execution (repro.dist).

The hard contract: ``LobsterEngine(shards=N)`` must return rows and tags
*identical* to the single-device engine — for every partitionable
program and every commutative-⊕ semiring — with gradients included for
the differentiable semirings.  Plus unit coverage for the partitioner,
exchange accounting, the device pool, and the fallback rules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DevicePool,
    DeviceProfile,
    HashPartitioner,
    LobsterEngine,
    LobsterSession,
    LobsterError,
    VirtualDevice,
)
from repro.dist.exchange import ExchangeOperator
from repro.provenance import registry
from repro.runtime.table import Table
from repro.workloads.analytics import CSPA
from _helpers import TC_PROGRAM, random_digraph

SHARD_COUNTS = [1, 2, 4]

#: Per-provenance constructor arguments: the general top-k reduce is
#: quadratic in per-row duplicate derivations, so the proof semirings
#: run with k=2 to keep the property tests fast.
PROV_KWARGS = {
    "top-k-proofs-device": {"k": 2},
    "diff-top-k-proofs-device": {"k": 2},
}


def _cspa_facts(n_vars=24, n_assign=36, seed=40):
    """Small forward-biased CSPA fact base (like
    :func:`repro.workloads.analytics.cspa_instance`, scaled down so the
    structured-tag semirings finish quickly; the closure still exercises
    the multi-predicate recursive stratum)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(1, n_vars, size=n_assign)
    dst = (src * rng.uniform(0.0, 1.0, size=n_assign)).astype(np.int64)
    assign = sorted({(int(a), int(b)) for a, b in zip(src, dst) if a != b})
    n_deref = max(3, n_assign // 5)
    deref = sorted(
        {
            (int(a), int(b))
            for a, b in zip(
                rng.integers(0, n_vars, size=n_deref),
                rng.integers(0, n_vars, size=n_deref),
            )
        }
    )
    return assign, deref


CSPA_ASSIGN, CSPA_DEREF = _cspa_facts()


def tags_identical(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise tag equality (works for plain and structured dtypes)."""
    return a.dtype == b.dtype and a.tobytes() == b.tobytes()


def run_engine(source, provenance, shards, loader):
    engine = LobsterEngine(
        source,
        provenance=provenance,
        shards=shards,
        **PROV_KWARGS.get(provenance, {}),
    )
    database = engine.create_database()
    loader(database)
    result = engine.run(database)
    return engine, database, result


class TestShardedEquivalence:
    """Property: sharded == single-device, rows and tags."""

    @pytest.fixture(scope="class")
    def tc_facts(self):
        rng = np.random.default_rng(77)
        edges = random_digraph(rng, 40, 150)
        probs = rng.uniform(0.05, 0.99, size=len(edges))
        return edges, list(probs)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize(
        "provenance",
        ["unit", "minmaxprob", "top-k-proofs-device"],
    )
    def test_tc_rows_and_tags_identical(self, tc_facts, provenance, shards):
        edges, probs = tc_facts
        use_probs = provenance != "unit"

        def load(db):
            db.add_facts("edge", edges, probs=probs if use_probs else None)

        _, base_db, base = run_engine(TC_PROGRAM, provenance, 1, load)
        _, shard_db, result = run_engine(TC_PROGRAM, provenance, shards, load)
        expected, actual = base_db.result("path"), shard_db.result("path")
        assert actual.rows() == expected.rows()
        assert tags_identical(actual.tags, expected.tags)
        assert result.shards == shards
        assert result.iterations == base.iterations

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize(
        "provenance",
        ["unit", "minmaxprob", "top-k-proofs-device"],
    )
    def test_cspa_rows_and_tags_identical(self, provenance, shards):
        rng = np.random.default_rng(5)
        probs = list(rng.uniform(0.1, 0.99, size=len(CSPA_ASSIGN)))
        use_probs = provenance != "unit"

        def load(db):
            db.add_facts("assign", CSPA_ASSIGN, probs=probs if use_probs else None)
            db.add_facts("dereference", CSPA_DEREF)

        _, base_db, _ = run_engine(CSPA, provenance, 1, load)
        _, shard_db, result = run_engine(CSPA, provenance, shards, load)
        for predicate in ("value_flow", "memory_alias", "value_alias"):
            expected, actual = base_db.result(predicate), shard_db.result(predicate)
            assert actual.rows() == expected.rows()
            assert tags_identical(actual.tags, expected.tags)
        assert result.shards == shards

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize(
        "provenance",
        ["diff-minmaxprob", "diff-top-k-proofs-device"],
    )
    def test_gradients_identical(self, tc_facts, provenance, shards):
        edges, probs = tc_facts

        def load(db):
            db.add_facts("edge", edges, probs=probs)

        single, base_db, _ = run_engine(TC_PROGRAM, provenance, 1, load)
        sharded, shard_db, _ = run_engine(TC_PROGRAM, provenance, shards, load)
        rows = base_db.result("path").rows()
        grad_out = {row: 1.0 for row in rows[::3]}
        expected = single.backward(base_db, "path", grad_out)
        actual = sharded.backward(shard_db, "path", grad_out)
        assert np.array_equal(expected, actual)

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize(
        "provenance",
        ["diff-minmaxprob", "diff-top-k-proofs-device"],
    )
    def test_cspa_gradients_identical(self, provenance, shards):
        rng = np.random.default_rng(6)
        probs = list(rng.uniform(0.1, 0.99, size=len(CSPA_ASSIGN)))

        def load(db):
            db.add_facts("assign", CSPA_ASSIGN, probs=probs)
            db.add_facts("dereference", CSPA_DEREF)

        single, base_db, _ = run_engine(CSPA, provenance, 1, load)
        sharded, shard_db, _ = run_engine(CSPA, provenance, shards, load)
        for predicate in ("value_flow", "value_alias"):
            rows = base_db.result(predicate).rows()
            grad_out = {row: 1.0 for row in rows[::2]}
            expected = single.backward(base_db, predicate, grad_out)
            actual = sharded.backward(shard_db, predicate, grad_out)
            assert np.array_equal(expected, actual)

    @pytest.mark.parametrize("shards", [3])
    def test_probabilities_identical(self, tc_facts, shards):
        edges, probs = tc_facts

        def load(db):
            db.add_facts("edge", edges, probs=probs)

        single, base_db, _ = run_engine(TC_PROGRAM, "minmaxprob", 1, load)
        sharded, shard_db, _ = run_engine(TC_PROGRAM, "minmaxprob", shards, load)
        assert single.query_probs(base_db, "path") == sharded.query_probs(
            shard_db, "path"
        )

    @pytest.mark.parametrize("shards", [3])
    def test_multi_stratum_program(self, shards):
        """Strata chains (flat → recursive → flat) exercise the transfer
        plan and the flat-rule round-robin across shard boundaries."""
        source = """
        rel base(x, y) :- edge(x, y).
        rel path(x, y) :- base(x, y) or (path(x, z) and base(z, y)).
        rel reach(x) :- path(s, x), start(s).
        query reach
        """
        rng = np.random.default_rng(4)
        edges = random_digraph(rng, 30, 90)
        probs = list(rng.uniform(0.1, 0.9, size=len(edges)))

        def load(db):
            db.add_facts("edge", edges, probs=probs)
            db.add_facts("start", [(0,)], probs=[0.8])

        _, base_db, _ = run_engine(source, "minmaxprob", 1, load)
        _, shard_db, _ = run_engine(source, "minmaxprob", shards, load)
        for predicate in ("base", "path", "reach"):
            expected, actual = base_db.result(predicate), shard_db.result(predicate)
            assert actual.rows() == expected.rows()
            assert tags_identical(actual.tags, expected.tags)

    def test_arity_zero_predicates(self):
        source = """
        rel reach(x) :- start(x) or (reach(y) and edge(y, x)).
        rel connected() :- reach(t), target(t).
        query connected
        """
        rng = np.random.default_rng(9)
        edges = random_digraph(rng, 20, 60)

        def load(db):
            db.add_facts("start", [(0,)])
            db.add_facts("target", [(7,), (13,)])
            db.add_facts("edge", edges)

        _, base_db, _ = run_engine(source, "unit", 1, load)
        _, shard_db, _ = run_engine(source, "unit", 4, load)
        assert shard_db.result("connected").rows() == base_db.result("connected").rows()
        assert shard_db.result("reach").rows() == base_db.result("reach").rows()


class TestFallbacksAndWarmRuns:
    def test_negation_falls_back_to_single_device(self):
        source = """
        rel reach(x) :- start(x) or (reach(y) and e(y, x)).
        rel unreached(x) :- node(x), not reach(x).
        query unreached
        """
        rng = np.random.default_rng(2)
        edges = random_digraph(rng, 12, 30)

        def load(db):
            db.add_facts("start", [(0,)])
            db.add_facts("e", edges)
            db.add_facts("node", [(n,) for n in range(12)])

        single, base_db, _ = run_engine(source, "unit", 1, load)
        sharded, shard_db, result = run_engine(source, "unit", 4, load)
        assert result.shards == 1  # fell back: negation is not partitionable
        assert shard_db.result("unreached").rows() == base_db.result("unreached").rows()

    def test_warm_rerun_matches_cold(self):
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", shards=2)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        engine.run(db)
        db.add_facts("edge", [(2, 3)])
        result = engine.run(db)  # transparent rebuild, never incremental
        assert not result.incremental

        cold = LobsterEngine(TC_PROGRAM, provenance="unit", shards=2)
        cold_db = cold.create_database()
        cold_db.add_facts("edge", [(0, 1), (1, 2), (2, 3)])
        cold.run(cold_db)
        assert db.result("path").rows() == cold_db.result("path").rows()

    def test_explicit_incremental_rejected(self):
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", shards=2)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        engine.run(db)
        db.add_facts("edge", [(1, 2)])
        assert not engine.supports_incremental(db)
        with pytest.raises(LobsterError):
            engine.run(db, incremental=True)

    def test_shards_must_be_positive(self):
        with pytest.raises(LobsterError):
            LobsterEngine(TC_PROGRAM, shards=0)

    def test_device_with_shards_is_rejected_not_ignored(self):
        with pytest.raises(LobsterError):
            LobsterEngine(TC_PROGRAM, device=VirtualDevice(), shards=2)
        with pytest.raises(LobsterError):
            LobsterEngine(
                TC_PROGRAM,
                device=VirtualDevice(),
                shard_devices=[VirtualDevice()],
            )

    def test_single_supplied_shard_device_is_used(self):
        device = VirtualDevice()
        engine = LobsterEngine(TC_PROGRAM, shard_devices=[device])
        assert engine.device is device and engine.shards == 1
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        engine.run(db)
        assert device.profile.kernel_launches > 0

    def test_edb_mask_state_matches_single_device(self):
        """Relations no stratum derives (plain EDB inputs) come out of a
        sharded run with the same partition masks single-device leaves."""
        states = {}
        for shards in (1, 2):
            engine = LobsterEngine(TC_PROGRAM, provenance="unit", shards=shards)
            db = engine.create_database()
            db.add_facts("edge", [(0, 1), (1, 2), (2, 3)])
            engine.run(db)
            rel = db.relation("edge")
            states[shards] = (
                rel.n_recent(),
                rel.snapshot("recent").rows(),
                rel.n_changed(),
            )
        assert states[1] == states[2]

    def test_retained_bytes_reset_across_runs(self):
        """Without buffer reuse, retained-temporary accounting must reset
        per stratum (as single-device does) — not accumulate across the
        runs served by the engine's cached executor."""
        from repro import OptimizationConfig

        engine = LobsterEngine(
            TC_PROGRAM,
            provenance="unit",
            shards=2,
            optimizations=OptimizationConfig(buffer_reuse=False),
        )
        edges = [(0, 1), (1, 2), (2, 3)]
        retained = []
        for _ in range(3):
            db = engine.create_database()
            db.add_facts("edge", edges)
            engine.run(db)
            retained.append(
                engine._sharded_executor.interpreters[0]._retained_bytes
            )
        assert retained[0] == retained[1] == retained[2]


class TestPartitioner:
    def test_owners_are_deterministic_and_complete(self):
        rng = np.random.default_rng(1)
        table = Table(
            [rng.integers(0, 1000, size=500), rng.integers(0, 1000, size=500)],
            np.ones(500, dtype=bool),
            500,
        )
        partitioner = HashPartitioner(4)
        owners = partitioner.owners(table)
        assert np.array_equal(owners, partitioner.owners(table))
        assert owners.min() >= 0 and owners.max() < 4
        parts = partitioner.split(table)
        assert sum(p.n_rows for p in parts) == table.n_rows

    def test_equal_rows_share_an_owner_across_tables(self):
        a = Table([np.array([5, 9]), np.array([2, 4])], np.ones(2, dtype=bool), 2)
        b = Table([np.array([9, 5]), np.array([4, 2])], np.ones(2, dtype=bool), 2)
        partitioner = HashPartitioner(8)
        assert partitioner.owners(a)[0] == partitioner.owners(b)[1]
        assert partitioner.owners(a)[1] == partitioner.owners(b)[0]

    def test_negative_zero_hashes_like_zero(self):
        plus = Table([np.array([0.0])], np.ones(1, dtype=bool), 1)
        minus = Table([np.array([-0.0])], np.ones(1, dtype=bool), 1)
        partitioner = HashPartitioner(16)
        assert partitioner.owners(plus)[0] == partitioner.owners(minus)[0]

    def test_arity_zero_rows_pinned_to_shard_zero(self):
        table = Table([], np.ones(1, dtype=bool), 1)
        assert HashPartitioner(8).owners(table).tolist() == [0]

    def test_balance_on_large_tables(self):
        rng = np.random.default_rng(3)
        n = 20_000
        table = Table(
            [rng.integers(0, 10_000, size=n), rng.integers(0, 10_000, size=n)],
            np.ones(n, dtype=bool),
            n,
        )
        counts = np.bincount(HashPartitioner(4).owners(table), minlength=4)
        assert counts.min() > 0.8 * n / 4
        assert counts.max() < 1.2 * n / 4


class TestExchange:
    def _tables(self, provenance_name="unit"):
        provenance = registry.create(provenance_name)
        provenance.setup(np.zeros(0))
        rng = np.random.default_rng(8)
        tables = []
        for _ in range(3):
            n = 50
            tables.append(
                Table(
                    [rng.integers(0, 100, size=n), rng.integers(0, 100, size=n)],
                    provenance.one_tags(n),
                    n,
                )
            )
        return provenance, tables

    def test_shuffle_routes_every_row_to_its_owner(self):
        provenance, tables = self._tables()
        devices = [VirtualDevice() for _ in range(3)]
        exchange = ExchangeOperator(HashPartitioner(3), devices)
        dtypes = (np.dtype(np.int64), np.dtype(np.int64))
        owned = exchange.shuffle(tables, dtypes, provenance)
        assert sum(t.n_rows for t in owned) == sum(t.n_rows for t in tables)
        partitioner = HashPartitioner(3)
        for shard, table in enumerate(owned):
            if table.n_rows:
                assert (partitioner.owners(table) == shard).all()

    def test_cross_shard_rows_charge_the_sender(self):
        provenance, tables = self._tables()
        devices = [VirtualDevice() for _ in range(3)]
        exchange = ExchangeOperator(HashPartitioner(3), devices)
        dtypes = (np.dtype(np.int64), np.dtype(np.int64))
        exchange.shuffle(tables, dtypes, provenance)
        total = sum(d.profile.exchange_bytes for d in devices)
        assert total > 0
        assert all(d.profile.exchange_seconds > 0 for d in devices)

    def test_single_shard_exchange_is_free(self):
        provenance, tables = self._tables()
        device = VirtualDevice()
        exchange = ExchangeOperator(HashPartitioner(1), [device])
        dtypes = (np.dtype(np.int64), np.dtype(np.int64))
        merged = exchange.all_gather(
            exchange.shuffle(tables[:1], dtypes, provenance), dtypes, provenance
        )
        assert merged.n_rows == tables[0].n_rows
        assert device.profile.exchange_bytes == 0

    def test_sharded_run_reports_exchange_separately(self):
        rng = np.random.default_rng(21)
        edges = random_digraph(rng, 40, 150)
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", shards=4)
        db = engine.create_database()
        db.add_facts("edge", edges)
        result = engine.run(db)
        assert result.profile.exchange_bytes > 0
        assert result.profile.exchange_seconds > 0
        # Exchange is accounted apart from host<->device transfer time.
        assert result.profile.exchange_seconds != result.profile.transfer_seconds
        assert len(result.shard_profiles) == 4


class TestDevicePool:
    def test_round_robin(self):
        pool = DevicePool(3)
        order = [pool.acquire()[0] for _ in range(7)]
        assert order == [0, 1, 2, 0, 1, 2, 0]

    def test_pooled_session_matches_plain_session(self):
        rng = np.random.default_rng(17)
        datasets = [random_digraph(rng, 20, 50) for _ in range(5)]

        def fill(session):
            tickets = []
            for edges in datasets:
                db = session.create_database()
                db.add_facts("edge", edges)
                tickets.append(session.submit(db))
            return tickets

        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        plain = LobsterSession(engine)
        plain_tickets = fill(plain)
        plain.run_all()

        pooled = LobsterSession(engine, pool=DevicePool(3))
        pooled_tickets = fill(pooled)
        report = pooled.run_all()

        assert report.pool_size == 3
        for pt, qt in zip(plain_tickets, pooled_tickets):
            assert (
                pooled.database(qt).result("path").rows()
                == plain.database(pt).result("path").rows()
            )

    def test_session_over_sharded_engine_shards_each_query(self):
        rng = np.random.default_rng(29)
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", shards=3)
        session = LobsterSession(engine)
        for _ in range(3):
            db = session.create_database()
            db.add_facts("edge", random_digraph(rng, 15, 40))
            session.submit(db)
        report = session.run_all()
        assert report.pool_size == 3  # the shard devices
        assert all(result.shards == 3 for result in report.results)
        assert report.profile.exchange_bytes > 0

    def test_pool_plus_sharded_engine_is_rejected(self):
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", shards=2)
        with pytest.raises(LobsterError):
            LobsterSession(engine, pool=DevicePool(2))

    def test_pooled_report_merges_device_profiles(self):
        rng = np.random.default_rng(19)
        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        pool = DevicePool(2)
        session = LobsterSession(engine, pool=pool)
        for _ in range(4):
            db = session.create_database()
            db.add_facts("edge", random_digraph(rng, 15, 40))
            session.submit(db)
        report = session.run_all()
        assert len(report.device_profiles) == 2
        merged = DeviceProfile.merge(report.device_profiles)
        assert report.profile.kernel_launches == merged.kernel_launches
        # The pool's live rollup agrees (profiles were reset at drain start).
        assert pool.merged_profile().kernel_launches == merged.kernel_launches
        # Both devices served some queries (round-robin over 4 queries).
        assert all(p.kernel_launches > 0 for p in report.device_profiles)
        assert report.simulated_parallel_seconds <= report.profile.busy_seconds


class TestDeviceProfileMerge:
    def test_counters_sum_and_peak_maxes(self):
        a = DeviceProfile(kernel_launches=3, bytes_allocated=100, peak_arena_bytes=50)
        a.instruction_counts = {"Probe": 2, "Build": 1}
        b = DeviceProfile(kernel_launches=5, bytes_allocated=10, peak_arena_bytes=80)
        b.instruction_counts = {"Probe": 4}
        merged = DeviceProfile.merge([a, b])
        assert merged.kernel_launches == 8
        assert merged.bytes_allocated == 110
        assert merged.peak_arena_bytes == 80
        assert merged.instruction_counts == {"Probe": 6, "Build": 1}

    def test_merge_of_nothing_is_zero(self):
        merged = DeviceProfile.merge([])
        assert merged.kernel_launches == 0
        assert merged.busy_seconds == 0.0

    def test_merge_matches_since_decomposition(self):
        device = VirtualDevice()
        before = device.profile.snapshot()
        device.record_transfer(1000, to_device=True)
        mid = device.profile.snapshot()
        device.record_exchange(500)
        first = mid.since(before)
        second = device.profile.since(mid)
        merged = DeviceProfile.merge([first, second])
        assert merged.transfer_bytes == device.profile.transfer_bytes
        assert merged.exchange_bytes == device.profile.exchange_bytes
        assert merged.transfer_seconds == pytest.approx(
            device.profile.transfer_seconds
        )


class TestLemireReduction:
    """The multiply-shift shard-id reduction: ``floor(h * n / 2**64)``."""

    def test_matches_big_integer_reference(self):
        """Pin the 32-bit-limb implementation against Python's exact
        big-integer arithmetic, across shard counts that exercise both
        limbs (including ones where ``h % n`` would disagree)."""
        from repro.dist.partition import reduce_hashes

        rng = np.random.default_rng(11)
        hashes = rng.integers(0, 2**64, size=4096, dtype=np.uint64)
        # Edge hashes: 0, max, and the limb boundary.
        hashes[:4] = [0, 2**64 - 1, 2**32 - 1, 2**32]
        for n in (1, 2, 3, 5, 7, 12, 31, 1000, 65535):
            expected = [(int(h) * n) >> 64 for h in hashes]
            assert reduce_hashes(hashes, n).tolist() == expected

    def test_uniform_on_non_power_of_two_shards(self):
        """Regression for the modulo-bias fix: every shard count (power
        of two or not) must land within a few percent of n/S on a large
        random table.  The old ``h % n`` passed looser bounds too, but
        this pins the new reduction's exact-uniformity headroom."""
        from repro import ShardMap

        rng = np.random.default_rng(12)
        n = 60_000
        table = Table(
            [rng.integers(0, 10**6, size=n), rng.integers(0, 10**6, size=n)],
            np.ones(n, dtype=bool),
            n,
        )
        for shards in (3, 5, 6, 7, 11):
            counts = np.bincount(
                ShardMap(shards).owners(table), minlength=shards
            )
            assert counts.min() > 0.95 * n / shards
            assert counts.max() < 1.05 * n / shards

    def test_ownership_is_contiguous_in_hash_space(self):
        """Multiply-shift gives each shard one contiguous slice of the
        hash space — the owner id is monotone in the hash value (which is
        what makes future range-based migration meaningful)."""
        from repro.dist.partition import reduce_hashes

        rng = np.random.default_rng(14)
        hashes = np.sort(rng.integers(0, 2**64, size=8192, dtype=np.uint64))
        for n in (2, 3, 7, 13):
            owners = reduce_hashes(hashes, n)
            assert (np.diff(owners) >= 0).all()


class TestVectorizedSplit:
    def test_split_vectorized_beats_per_shard_take_loop(self):
        """Micro-benchmark: the single stable-argsort + bincount split
        must beat the historical per-shard ``take(flatnonzero(owners ==
        s))`` loop (O(S·N) mask scans).  Best-of-3 each and only a
        >= 1.2x bar (measured ~1.6x), so scheduler noise cannot flake
        the assertion while a regression back to per-shard scans still
        fails."""
        import time

        from repro import ShardMap

        rng = np.random.default_rng(13)
        n, shards = 200_000, 32
        table = Table(
            [rng.integers(0, 10**6, size=n), rng.integers(0, 10**6, size=n)],
            np.ones(n, dtype=bool),
            n,
        )
        shard_map = ShardMap(shards)

        def naive(table):
            owners = shard_map.owners(table)
            return [
                table.take(np.flatnonzero(owners == shard))
                for shard in range(shards)
            ]

        def best_of(fn, k=3):
            times = []
            for _ in range(k):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        fast = best_of(lambda: shard_map.split(table))
        slow = best_of(lambda: naive(table))
        assert fast * 1.2 < slow, (
            f"vectorized split ({fast:.4f}s) should beat the per-shard "
            f"take loop ({slow:.4f}s)"
        )
        # And routing is byte-identical to the loop it replaced.
        for a, b in zip(shard_map.split(table), naive(table)):
            assert a.rows() == b.rows()
            assert np.array_equal(a.tags, b.tags)

    def test_split_routes_keyed_and_split_predicates(self):
        """Keyed ownership co-locates equal keys; a split override fans
        one hot key across its owner tuple and nothing else moves."""
        from repro import ShardMap

        rng = np.random.default_rng(15)
        n = 5_000
        keys = rng.integers(0, 50, size=n)
        keys[: n // 2] = 7  # one heavy key
        table = Table(
            [keys, rng.integers(0, 10**6, size=n)], np.ones(n, dtype=bool), n
        )
        keyed = ShardMap(4, key_columns={"path": 0})
        owners = keyed.owners(table, "path")
        # every row of a key lands on one shard
        for value in np.unique(keys):
            assert len(np.unique(owners[keys == value])) == 1
        split = ShardMap(
            4, key_columns={"path": 0}, splits={"path": {7: (0, 1, 2, 3)}}
        )
        split_owners = split.owners(table, "path")
        hot = keys == 7
        assert len(np.unique(split_owners[hot])) > 1
        assert np.array_equal(split_owners[~hot], owners[~hot])
        # ownership stays a pure row function: equal rows agree across calls
        assert np.array_equal(split.owners(table, "path"), split_owners)
        # and split() reassembles to exactly the owner partition
        parts = split.split(table, "path")
        assert sum(p.n_rows for p in parts) == n
        for shard, part in enumerate(parts):
            if part.n_rows:
                assert (split.owners(part, "path") == shard).all()


class TestMidFixpointReshard:
    """Hypothesis property: swapping the ShardMap at *arbitrary* points
    mid-fixpoint — grow, shrink, hot-key split, and back — never changes
    rows or tags versus static single-device execution."""

    @staticmethod
    def _hub_edges():
        """TC fact base with node 0 a heavy hub, so key 0 is genuinely
        hot under keyed ownership and split overrides matter."""
        rng = np.random.default_rng(19)
        edges = {(0, int(t)) for t in rng.integers(1, 30, size=25)}
        edges |= {
            (int(a), int(b))
            for a, b in zip(
                rng.integers(0, 30, size=60), rng.integers(0, 30, size=60)
            )
            if a != b
        }
        return sorted(edges)

    @classmethod
    def _reference(cls, source, provenance, loader):
        engine = LobsterEngine(
            source,
            provenance=provenance,
            **PROV_KWARGS.get(provenance, {}),
        )
        database = engine.create_database()
        loader(database)
        engine.run(database)
        return engine, database

    @classmethod
    def _elastic_run(cls, source, provenance, loader, start_shards, schedule):
        """Run sharded with a reshard_hook that swaps the map per
        ``schedule`` ({iteration: ShardMap}); returns (engine, db)."""
        from repro.dist.executor import ShardedExecutor

        engine = LobsterEngine(
            source,
            provenance=provenance,
            shards=start_shards,
            **PROV_KWARGS.get(provenance, {}),
        )
        executor = ShardedExecutor(
            engine.shard_devices, max_iterations=engine.max_iterations
        )
        executor.reshard_hook = (
            lambda ex, stratum, iteration: schedule.get(iteration)
        )
        engine._sharded_executor = executor
        database = engine.create_database()
        loader(database)
        engine.run(database)
        return engine, database, executor

    @settings(max_examples=12, deadline=None)
    @given(
        provenance=st.sampled_from(
            ["unit", "minmaxprob", "top-k-proofs-device"]
        ),
        start_shards=st.integers(2, 3),
        events=st.lists(
            st.tuples(
                st.integers(1, 5),  # iteration to reshard at
                st.integers(1, 5),  # new shard count
                st.booleans(),  # keyed on column 0?
                st.booleans(),  # split the hub key?
            ),
            min_size=1,
            max_size=3,
            unique_by=lambda e: e[0],
        ),
    )
    def test_tc_reshard_any_iteration(self, provenance, start_shards, events):
        from repro import ShardMap

        edges = self._hub_edges()
        probs = list(
            np.random.default_rng(23).uniform(0.05, 0.99, size=len(edges))
        )
        use_probs = provenance != "unit"

        def load(db):
            db.add_facts("edge", edges, probs=probs if use_probs else None)

        schedule = {}
        for iteration, n, keyed, split in events:
            key_columns = {"path": 0, "edge": 0} if keyed else None
            splits = (
                {"path": {0: tuple(range(n))}}
                if keyed and split and n > 1
                else None
            )
            schedule[iteration] = ShardMap(
                n, key_columns=key_columns, splits=splits
            )
        _, base_db = self._reference(TC_PROGRAM, provenance, load)
        _, shard_db, executor = self._elastic_run(
            TC_PROGRAM, provenance, load, start_shards, schedule
        )
        expected, actual = base_db.result("path"), shard_db.result("path")
        assert actual.rows() == expected.rows()
        assert tags_identical(actual.tags, expected.tags)
        assert executor.reshards_applied >= 1

    @settings(max_examples=6, deadline=None)
    @given(
        provenance=st.sampled_from(
            ["unit", "minmaxprob", "top-k-proofs-device"]
        ),
        iteration=st.integers(1, 4),
        n_shards=st.integers(1, 5),
    )
    def test_cspa_reshard_any_iteration(self, provenance, iteration, n_shards):
        from repro import ShardMap

        rng = np.random.default_rng(5)
        probs = list(rng.uniform(0.1, 0.99, size=len(CSPA_ASSIGN)))
        use_probs = provenance != "unit"

        def load(db):
            db.add_facts(
                "assign", CSPA_ASSIGN, probs=probs if use_probs else None
            )
            db.add_facts("dereference", CSPA_DEREF)

        schedule = {
            iteration: ShardMap(n_shards, key_columns={"value_flow": 0})
        }
        _, base_db = self._reference(CSPA, provenance, load)
        _, shard_db, executor = self._elastic_run(
            CSPA, provenance, load, 2, schedule
        )
        for predicate in ("value_flow", "memory_alias", "value_alias"):
            expected = base_db.result(predicate)
            actual = shard_db.result(predicate)
            assert actual.rows() == expected.rows()
            assert tags_identical(actual.tags, expected.tags)

    @pytest.mark.parametrize(
        "provenance", ["diff-minmaxprob", "diff-top-k-proofs-device"]
    )
    def test_gradients_survive_mid_fixpoint_reshard(self, provenance):
        """Grow 2→4 with a hub split at iteration 2, shrink back to 1 at
        iteration 4: gradients stay bitwise equal to single-device."""
        from repro import ShardMap

        edges = self._hub_edges()
        probs = list(
            np.random.default_rng(29).uniform(0.05, 0.99, size=len(edges))
        )

        def load(db):
            db.add_facts("edge", edges, probs=probs)

        schedule = {
            2: ShardMap(
                4,
                key_columns={"path": 0},
                splits={"path": {0: (0, 1, 2, 3)}},
            ),
            4: ShardMap(1),
        }
        single, base_db = self._reference(TC_PROGRAM, provenance, load)
        sharded, shard_db, executor = self._elastic_run(
            TC_PROGRAM, provenance, load, 2, schedule
        )
        assert executor.reshards_applied == 2
        rows = base_db.result("path").rows()
        grad_out = {row: 1.0 for row in rows[::3]}
        expected = single.backward(base_db, "path", grad_out)
        actual = sharded.backward(shard_db, "path", grad_out)
        assert np.array_equal(expected, actual)

"""Hash partitioning of relations across a shard pool.

Every tuple has exactly one *owner* shard, determined by a splitmix-style
hash of its value columns (tags never participate: two runs of the same
program must partition identically regardless of provenance).  The
sharded executor uses ownership two ways:

* the semi-naive **frontier** is genuinely partitioned — each shard seeds
  its ``recent`` mask with only the rows it owns, so the probe side of
  every recursive join shrinks ~1/N per shard;
* delta **merging** happens at the owner — the exchange operator routes
  every derived row to the shard owning it, where duplicate derivations
  (possibly produced on different shards) are ⊕-combined exactly once.

The hash is deterministic across processes and platforms: integer
columns are mixed via their 64-bit two's-complement pattern, float
columns via their IEEE-754 bits (with ``-0.0`` canonicalized to ``0.0``
so value-equal rows always share an owner).

Two ownership bases exist:

* **row basis** (the default, and all a plain :class:`HashPartitioner`
  does) — the hash covers every value column, so ownership is uniform by
  construction but oblivious to key locality;
* **key basis** — a :class:`ShardMap` may pin a relation to one *key
  column*.  Rows sharing a key value then share an owner, which makes
  the dominant left-linear recursive joins shuffle-free (a derived row
  inherits its parent's key, hence its parent's shard) and makes
  migration units meaningful ("key k moves from shard 2 to shard 5") —
  at the price of skew sensitivity, which the per-key **split
  overrides** repair: a hot key's rows are spread across several owners
  by a secondary full-row hash (partial-value replication), and the
  owner-side ⊕-merge through ``dedup_table`` keeps results bitwise
  identical because every distinct row still has exactly one owner.

Shard ids come from the multiply-shift (Lemire) reduction ``(h * n) >>
64`` rather than ``h % n``: it is division-free and exactly uniform over
the hash space for every shard count (the modulo's bias toward low
residues, however small, is simply absent), and the test-suite pins it
against a big-integer reference.
"""

from __future__ import annotations

import numpy as np

from ..runtime.table import Table

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_FNV_PRIME = np.uint64(0x100000001B3)
_U32 = np.uint64(32)
_LO32 = np.uint64(0xFFFFFFFF)


def _mix64(bits: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer."""
    with np.errstate(over="ignore"):
        z = bits + _SPLITMIX_GAMMA
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def hash_rows(columns: list[np.ndarray], n_rows: int) -> np.ndarray:
    """Deterministic 64-bit hash per row of a columnar table."""
    acc = np.full(n_rows, _SPLITMIX_GAMMA, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for column in columns:
            if column.dtype.kind == "f":
                values = column.astype(np.float64)
                # -0.0 == 0.0 must hash identically.
                values = values + 0.0
                bits = values.view(np.uint64)
            else:
                bits = column.astype(np.int64).view(np.uint64)
            acc = acc * _FNV_PRIME + _mix64(bits)
    return _mix64(acc)


def reduce_hashes(hashes: np.ndarray, n_shards: int) -> np.ndarray:
    """Map 64-bit hashes onto ``[0, n_shards)`` via the multiply-shift
    (Lemire) reduction: ``floor(h * n / 2**64)``.

    Exactly uniform over the hash space for any ``n_shards`` (each shard
    owns a contiguous, equal-measure slice of ``[0, 2**64)``), unlike
    ``h % n`` whose low residues are over-represented for shard counts
    that do not divide ``2**64``.  Computed in 32-bit limbs because
    numpy has no 128-bit product: with ``h = hi*2**32 + lo`` and
    ``n < 2**32``, the top 64 bits of ``h*n`` are
    ``(hi*n + ((lo*n) >> 32)) >> 32``.
    """
    n = np.uint64(n_shards)
    with np.errstate(over="ignore"):
        hi = hashes >> _U32
        lo = hashes & _LO32
        return ((hi * n + ((lo * n) >> _U32)) >> _U32).astype(np.int64)


class ShardMap:
    """Deterministic row → owner-shard assignment with per-key overrides.

    The no-argument form (``ShardMap(n)``) hashes every value column and
    is exactly the classic :class:`HashPartitioner`.  Two optional
    refinements make it the unit the reshard planner trades in:

    * ``key_columns`` — ``{predicate: column_index}``.  Rows of a keyed
      predicate are owned by their *key column's* hash alone, so rows
      sharing a key co-locate (shuffle-free left-linear recursion, cheap
      key-granular migration).
    * ``splits`` — ``{predicate: {key_value: (owner, ...)}}``.  A hot
      key's rows are spread across its owner tuple by a secondary hash
      of the *full row*, so no single shard eats the key's whole mass.
      Ownership stays a pure function of the row, which is all the
      sharded executor's bitwise-equality argument needs.

    Instances are immutable in spirit: build a new map per configuration
    (the planner does) rather than mutating one mid-run.
    """

    def __init__(
        self,
        n_shards: int,
        key_columns: dict[str, int] | None = None,
        splits: dict[str, dict[object, tuple[int, ...]]] | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.key_columns = dict(key_columns or {})
        self.splits: dict[str, dict[object, tuple[int, ...]]] = {}
        for predicate, overrides in (splits or {}).items():
            clean: dict[object, tuple[int, ...]] = {}
            for value, owners in overrides.items():
                owners = tuple(sorted(set(int(o) for o in owners)))
                if not owners:
                    raise ValueError(
                        f"split for {predicate}:{value!r} has no owners"
                    )
                bad = [o for o in owners if not 0 <= o < n_shards]
                if bad:
                    raise ValueError(
                        f"split owners {bad} out of range for "
                        f"{n_shards} shards"
                    )
                clean[value] = owners
            if clean:
                self.splits[predicate] = clean

    # ------------------------------------------------------------------

    def owners(self, table: Table, predicate: str | None = None) -> np.ndarray:
        """Owner shard id per row.  Arity-0 relations (at most one
        logical row) are pinned to shard 0."""
        if table.arity == 0:
            return np.zeros(table.n_rows, dtype=np.int64)
        key_column = (
            self.key_columns.get(predicate) if predicate is not None else None
        )
        if key_column is None or key_column >= table.arity:
            basis = table.columns
        else:
            basis = [table.columns[key_column]]
        owners = reduce_hashes(hash_rows(basis, table.n_rows), self.n_shards)
        overrides = self.splits.get(predicate) if predicate is not None else None
        if overrides and key_column is not None and key_column < table.arity:
            keys = table.columns[key_column]
            row_hashes: np.ndarray | None = None
            for value, owner_set in overrides.items():
                mask = keys == keys.dtype.type(value)
                if not mask.any():
                    continue
                if row_hashes is None:
                    # Secondary hash over the *whole* row: the hot key's
                    # rows fan out over its owner tuple deterministically.
                    row_hashes = hash_rows(table.columns, table.n_rows)
                slots = reduce_hashes(row_hashes[mask], len(owner_set))
                owners[mask] = np.asarray(owner_set, dtype=np.int64)[slots]
        return owners

    def owner_mask(self, table: Table, shard: int, predicate: str | None = None) -> np.ndarray:
        return self.owners(table, predicate) == shard

    def split(self, table: Table, predicate: str | None = None) -> list[Table]:
        """Partition a table into per-owner sub-tables (shard order).

        One stable argsort + bincount pass instead of ``n_shards``
        boolean-mask scans: rows are gathered into owner order once and
        the per-shard tables are zero-copy slices of that gather.  The
        stable sort preserves source order within each shard, so routing
        is byte-identical to the per-shard ``flatnonzero`` loop it
        replaced (pinned by a micro-benchmark in ``tests/test_dist.py``).
        """
        if self.n_shards == 1:
            return [table]
        owners = self.owners(table, predicate)
        # Stable argsort of a <=16-bit key is a radix sort in numpy
        # (one O(N) pass); shard counts always fit.
        sort_key = (
            owners.astype(np.int16) if self.n_shards <= 0x7FFF else owners
        )
        order = np.argsort(sort_key, kind="stable")
        counts = np.bincount(owners, minlength=self.n_shards)
        columns = [column[order] for column in table.columns]
        tags = table.tags[order] if table.n_rows else table.tags
        offsets = np.zeros(self.n_shards + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        parts = []
        for shard in range(self.n_shards):
            lo, hi = int(offsets[shard]), int(offsets[shard + 1])
            parts.append(
                Table([column[lo:hi] for column in columns], tags[lo:hi], hi - lo)
            )
        return parts

    # ------------------------------------------------------------------

    def describe(self) -> str:
        keyed = ",".join(
            f"{name}@{col}" for name, col in sorted(self.key_columns.items())
        )
        n_splits = sum(len(v) for v in self.splits.values())
        return (
            f"ShardMap(n={self.n_shards}"
            + (f", keys=[{keyed}]" if keyed else "")
            + (f", splits={n_splits}" if n_splits else "")
            + ")"
        )

    def __repr__(self) -> str:
        return self.describe()


class HashPartitioner(ShardMap):
    """The classic row-hash partitioner: every value column participates,
    no per-key overrides.  Kept as the default (and the name the rest of
    the codebase grew up with); :class:`ShardMap` is its generalization.
    """

    def __init__(self, n_shards: int):
        super().__init__(n_shards)

"""DevicePool acquisition policies: round-robin vs least-loaded."""

from __future__ import annotations

import pytest

from repro import DevicePool, LobsterEngine, LobsterSession
from repro.workloads.analytics import TRANSITIVE_CLOSURE


class TestRoundRobin:
    def test_fair_rotation(self):
        pool = DevicePool(3)
        assert [pool.acquire()[0] for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_eligible_subset_preserves_rotation(self):
        pool = DevicePool(4)
        pool.acquire()  # cursor -> 1
        index, _ = pool.acquire(eligible=[0, 2])
        assert index == 2  # first eligible at or after the cursor
        assert pool.acquire()[0] == 3  # cursor advanced past 2


class TestLeastLoaded:
    def test_picks_idle_device(self):
        pool = DevicePool(3, policy="least-loaded")
        pool.devices[0].profile.kernel_seconds = 5.0
        pool.devices[1].profile.kernel_seconds = 1.0
        pool.devices[2].profile.kernel_seconds = 3.0
        assert pool.acquire()[0] == 1

    def test_ties_break_to_lowest_index(self):
        pool = DevicePool(3, policy="least-loaded")
        assert pool.acquire()[0] == 0

    def test_eligible_subset(self):
        pool = DevicePool(3, policy="least-loaded")
        pool.devices[1].profile.kernel_seconds = 1.0
        pool.devices[2].profile.kernel_seconds = 2.0
        # Device 0 is globally least loaded but not eligible.
        assert pool.acquire(eligible=[1, 2])[0] == 1

    def test_policy_override_per_call(self):
        pool = DevicePool(2)  # default round-robin
        pool.devices[0].profile.kernel_seconds = 9.0
        assert pool.acquire(policy="least-loaded")[0] == 1
        assert pool.acquire()[0] == 0  # rotation untouched by the override

    def test_balances_heterogeneous_queries(self):
        # Alternating heavy/light queries: least-loaded steers work away
        # from the device that absorbed the heavy ones, ending closer to
        # balanced than blind rotation does.
        def drain(policy):
            engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
            pool = DevicePool(2, policy=policy)
            session = LobsterSession(engine, pool=pool)
            for size in (40, 2, 40, 2, 40, 2, 40, 2):
                db = session.create_database()
                db.add_facts("edge", [(i, i + 1) for i in range(size)])
                session.submit(db)
            session.run_all()
            busy = sorted(d.profile.busy_seconds for d in pool.devices)
            return busy[1] - busy[0]  # imbalance

        assert drain("least-loaded") <= drain("round-robin")


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown pool policy"):
            DevicePool(2, policy="random")
        pool = DevicePool(2)
        with pytest.raises(ValueError, match="unknown pool policy"):
            pool.acquire(policy="random")

    def test_empty_eligible_rejected(self):
        pool = DevicePool(2)
        with pytest.raises(ValueError, match="eligible"):
            pool.acquire(eligible=[])

    def test_out_of_range_eligible_rejected(self):
        pool = DevicePool(2)
        with pytest.raises(ValueError, match="out of range"):
            pool.acquire(eligible=[0, 5])

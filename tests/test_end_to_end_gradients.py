"""End-to-end gradient checks: engine.backward vs finite differences.

Stronger than the per-semiring unit tests — these differentiate *through
the whole pipeline* (parser, planner, APM, fix-point, tag saturation) on
recursive programs, comparing against numeric differentiation of the
engine's own forward pass.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LobsterEngine

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."


def forward_prob(engine, edges, probs, row):
    db = engine.create_database()
    db.add_facts("edge", edges, probs=list(probs))
    engine.run(db)
    return engine.query_probs(db, "path").get(row, 0.0), db


def engine_gradient(engine, edges, probs, row):
    _, db = forward_prob(engine, edges, probs, row)
    return engine.backward(db, "path", {row: 1.0})


def numeric_gradient(engine, edges, probs, row, eps=1e-6):
    grad = np.zeros(len(probs))
    base, _ = forward_prob(engine, edges, probs, row)
    for index in range(len(probs)):
        perturbed = np.array(probs, dtype=float)
        perturbed[index] += eps
        up, _ = forward_prob(engine, edges, perturbed, row)
        grad[index] = (up - base) / eps
    return grad


class TestDiffTop1EndToEnd:
    def make_engine(self):
        return LobsterEngine(TC, provenance="diff-top-1-proofs", proof_capacity=16)

    def test_chain(self):
        engine = self.make_engine()
        edges = [(0, 1), (1, 2), (2, 3)]
        probs = [0.9, 0.8, 0.7]
        analytic = engine_gradient(engine, edges, probs, (0, 3))
        numeric = numeric_gradient(engine, edges, probs, (0, 3))
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_diamond_gradient_follows_best_proof(self):
        engine = self.make_engine()
        # Route via 1 has probability 0.72, via 2 only 0.30: the top-1
        # gradient is zero on the losing route's edges.
        edges = [(0, 1), (1, 3), (0, 2), (2, 3)]
        probs = [0.9, 0.8, 0.5, 0.6]
        analytic = engine_gradient(engine, edges, probs, (0, 3))
        numeric = numeric_gradient(engine, edges, probs, (0, 3))
        assert np.allclose(analytic, numeric, atol=1e-4)
        assert analytic[2] == 0.0 and analytic[3] == 0.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(lambda e: e[0] != e[1]),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_gradcheck(self, edges, seed):
        # Probabilities are kept apart so the +eps perturbation cannot
        # flip which proof is the top-1 (the function is piecewise
        # differentiable; we test inside a piece).
        rng = np.random.default_rng(seed)
        probs = rng.choice(np.linspace(0.15, 0.85, 40), size=len(edges), replace=False)
        engine = self.make_engine()
        db = engine.create_database()
        db.add_facts("edge", edges, probs=list(probs))
        engine.run(db)
        derived = engine.query_probs(db, "path")
        if not derived:
            return
        row = sorted(derived)[0]
        analytic = engine_gradient(engine, edges, probs, row)
        numeric = numeric_gradient(engine, edges, probs, row)
        assert np.allclose(analytic, numeric, atol=1e-3)


class TestDiffMinMaxEndToEnd:
    def test_witness_gradient(self):
        engine = LobsterEngine(TC, provenance="diff-minmaxprob")
        edges = [(0, 1), (1, 2)]
        probs = [0.9, 0.4]
        analytic = engine_gradient(engine, edges, probs, (0, 2))
        numeric = numeric_gradient(engine, edges, probs, (0, 2))
        # min(0.9, 0.4): all gradient on the weakest link.
        assert np.allclose(analytic, [0.0, 1.0])
        assert np.allclose(analytic, numeric, atol=1e-4)


class TestDiffTopKEndToEnd:
    def test_inclusion_exclusion_gradient(self):
        engine = LobsterEngine(
            TC, provenance="diff-top-k-proofs-device", k=2, proof_capacity=16
        )
        edges = [(0, 1), (1, 3), (0, 2), (2, 3)]
        probs = [0.9, 0.8, 0.5, 0.6]
        analytic = engine_gradient(engine, edges, probs, (0, 3))
        numeric = numeric_gradient(engine, edges, probs, (0, 3))
        assert np.allclose(analytic, numeric, atol=1e-4)
        # Unlike top-1, the second route now carries gradient too.
        assert analytic[2] > 0.0 and analytic[3] > 0.0

"""Trace recording, hotness, and whole-program trace compilation.

The trace-JIT lifecycle (the DBI pattern: translate a hot region once,
cache the translation, re-enter the code cache):

1. **warm** — the first ``hot_runs`` executions of a compiled plan run
   fully interpreted while the engine counts them per
   ``(plan key, dtype signature)``;
2. **record** — the next run still executes interpreted, but with a
   :class:`TraceRecorder` attached: the interpreter reports every
   variant it executes (the actual straight-line instruction sequence),
   and a :class:`~repro.stats.feedback.PlanFeedback` captures the
   observed cardinalities (join matches, selection survivors, per-rule
   outputs) — the same feedback machinery the adaptive planner uses;
3. **compile** — :func:`compile_trace` lowers every recorded-program
   variant through the fusion compiler
   (:func:`repro.jit.fuse.compile_variant`) into a
   :class:`CompiledTrace`, which the engine stores in the
   :class:`~repro.runtime.cache.ProgramCache` next to the plan, keyed by
   ``(plan key, dtype signature)``;
4. **execute** — subsequent runs dispatch each variant to its fused
   kernel; a guard failure deopts that variant back to the interpreter
   (reason recorded on ``ExecutionResult.jit_deopt``), and a
   drift-triggered re-plan invalidates the trace together with the plan.

Unsupported constructs degrade, never break: a variant with stratified
negation stays interpreted (listed in :attr:`CompiledTrace.skipped`),
and a non-idempotent ⊕ marks the whole trace unsupported — every
"execute" run then reports a deopt with that reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fuse import VariantKernel, compile_variant
from ..apm.compiler import ApmProgram, Variant
from ..errors import JitUnsupportedError
from ..stats.feedback import PlanFeedback

__all__ = [
    "DEDUP_SAFE_SEMIRINGS",
    "JitConfig",
    "TraceRecorder",
    "CompiledTrace",
    "JitRunState",
    "trace_signature",
    "compile_trace",
]

#: Semirings whose ⊕-reduce is order-insensitive enough for the fused
#: pre-dedup (``relation.advance`` canonicalizes by sort + unique⟨⊕⟩, so
#: for these the final state is bitwise unchanged).  Top-k and the
#: differentiable semirings keep their proofs/gradients tie-break-order
#: sensitive and are excluded — they still JIT, just without the fused
#: ⊕-merge.
DEDUP_SAFE_SEMIRINGS = frozenset({"unit", "minmaxprob"})


@dataclass(frozen=True)
class JitConfig:
    """Trace-JIT policy knobs (``LobsterEngine(jit=JitConfig(...))``)."""

    #: Warm interpreted runs before the next run records a trace.  The
    #: run after the recording executes the compiled trace.
    hot_runs: int = 2
    #: Enable the fused ⊕-merge for :data:`DEDUP_SAFE_SEMIRINGS`
    #: (pre-deduplicate each variant's delta inside the fused kernel).
    fused_dedup: bool = True


def trace_signature(database) -> str:
    """The dtype signature a trace is specialized against: semiring,
    tag dtype, and every relation's column dtypes.  A database whose
    signature differs (e.g. a recovery-restored instance with a widened
    column) simply warms its own trace instead of tripping guards."""
    parts = [database.provenance.name, str(database.provenance.tag_dtype())]
    for name in sorted(database.schemas):
        dtypes = ",".join(str(dt) for dt in database.schemas[name])
        parts.append(f"{name}({dtypes})")
    return "|".join(parts)


@dataclass
class TraceRecorder:
    """Collects the executed variant sequence during a recording run.

    The interpreter calls :meth:`record_variant` for every variant it
    executes (in execution order), while :attr:`feedback` — attached to
    the same run — accumulates the observed cardinalities.  Together
    they are the recorded trace that :func:`compile_trace` compiles.
    """

    plan_key: str
    signature: str
    feedback: PlanFeedback
    #: ``(rule_key, iteration)`` per executed variant, execution order.
    entries: list[tuple[str, int]] = field(default_factory=list)

    def record_variant(self, variant: Variant, iteration: int) -> None:
        self.entries.append((variant.rule_key or "<anon>", iteration))


@dataclass
class CompiledTrace:
    """A program's fused translation, stored in the code cache."""

    plan_key: str
    signature: str
    #: The exact :class:`ApmProgram` instance the kernels were compiled
    #: against.  Kernels are keyed by ``id(variant)``, so a trace is only
    #: valid for this instance; the cache treats any other instance
    #: (e.g. a drift-triggered recompile) as a miss.
    apm: ApmProgram
    #: ``id(variant) -> VariantKernel`` for every fusible variant.
    kernels: dict[int, VariantKernel]
    #: ``variant label -> reason`` for variants left on the interpreter.
    skipped: dict[str, str]
    #: When set, the whole trace has no fused translation (non-idempotent
    #: ⊕, or nothing fusible) — execute-mode runs deopt with this reason.
    unsupported: str | None
    #: The recording run's executed-variant sequence.
    entries: list[tuple[str, int]]
    #: Observed cardinalities from the recording run (PlanFeedback rows).
    instruction_rows: dict[str, int]

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)


class JitRunState:
    """Per-run dispatch state the engine attaches to the interpreter."""

    __slots__ = ("trace", "kernels", "executed", "deopts")

    def __init__(self, trace: CompiledTrace):
        self.trace = trace
        self.kernels = trace.kernels
        #: Fused kernel executions this run.
        self.executed = 0
        #: Guard-failure reasons this run (each one fell back cleanly).
        self.deopts: list[str] = []


def compile_trace(
    apm: ApmProgram,
    provenance,
    recorder: TraceRecorder,
    config: JitConfig,
) -> CompiledTrace:
    """Lower a recorded trace into fused kernels.

    Never raises :class:`~repro.errors.JitUnsupportedError` — variants
    without a fused translation are recorded in ``skipped`` and keep
    executing through the interpreter; a semiring-level rejection marks
    the whole trace ``unsupported``.
    """
    kernels: dict[int, VariantKernel] = {}
    skipped: dict[str, str] = {}
    unsupported: str | None = None

    if not provenance.idempotent_oplus:
        unsupported = (
            f"non-idempotent ⊕ ({provenance.name}): the fused ⊕-merge "
            "would reassociate sums; the interpreter's materialized "
            "merge order is the semantics"
        )
    else:
        fused_dedup = (
            config.fused_dedup and provenance.name in DEDUP_SAFE_SEMIRINGS
        )
        tag_dtype = provenance.tag_dtype()
        for si, stratum in enumerate(apm.strata):
            for ri, rule in enumerate(stratum.rules):
                labeled = [
                    (f"s{si}r{ri}v{vi}", variant)
                    for vi, variant in enumerate(rule.variants)
                ] + [
                    (f"s{si}r{ri}d{vi}", variant)
                    for vi, variant in enumerate(rule.delta_variants)
                ]
                for label, variant in labeled:
                    try:
                        kernels[id(variant)] = compile_variant(
                            variant, fused_dedup, tag_dtype
                        )
                    except JitUnsupportedError as exc:
                        skipped[label] = exc.reason
        if not kernels:
            unsupported = next(
                iter(skipped.values()), "no fusible variants in program"
            )
            kernels = {}

    return CompiledTrace(
        plan_key=recorder.plan_key,
        signature=recorder.signature,
        apm=apm,
        kernels=kernels if unsupported is None else {},
        skipped=skipped,
        unsupported=unsupported,
        entries=list(recorder.entries),
        instruction_rows=dict(recorder.feedback.instruction_rows),
    )

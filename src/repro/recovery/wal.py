"""The write-ahead log: signed input deltas between checkpoints.

The WAL is segmented: segment ``wal-<seq>.log`` holds every record
written *after* checkpoint ``seq`` and before checkpoint ``seq + 1``.
Starting a new checkpoint rolls the log to a fresh segment, so replay
after recovery is simply "read every segment with sequence >= the
recovered checkpoint, in ascending order".  Keeping segments for the
retained older checkpoints (not just the newest) is what makes the
stale-checkpoint scenario recoverable: if the newest checkpoint file is
corrupt at rest, recovery falls back one sequence and replays a longer
tail to the same final state.

Two record kinds share the log:

* ``delta`` — one :class:`~repro.stream.TickDelta` applied to one
  stream: the signed inserts/retracts plus the tick bookkeeping needed
  to resynchronize the deterministic stream source during replay.
* ``cursor`` — a durable subscription cursor advance, written when a
  named subscriber acknowledges deltas by polling them.  Replaying
  cursors is what gives consumers exactly-once delivery across a crash:
  a recovered subscription resumes at the last acknowledged tick, so
  nothing is lost and nothing is re-delivered.

Records are CRC-framed (:mod:`repro.recovery.framing`); reads are
tolerant — a torn tail is truncated silently because the record it lost
was never acknowledged as durable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .codec import decode, encode
from .framing import frame, read_frames
from .storage import LocalStorage
from ..errors import CorruptLogError

__all__ = ["WalReadResult", "WriteAheadLog"]

_NAME = re.compile(r"^wal-(\d{8})\.log$")


@dataclass
class WalReadResult:
    """All valid records at or after one checkpoint sequence."""

    records: list[dict] = field(default_factory=list)
    #: Torn-tail bytes dropped from the final segment read.
    truncated_bytes: int = 0
    #: Segment sequences that contributed records.
    segments: list[int] = field(default_factory=list)


class WriteAheadLog:
    """Segmented, CRC-framed record log in one storage root."""

    def __init__(self, storage: LocalStorage):
        self.storage = storage

    @staticmethod
    def name(seq: int) -> str:
        return f"wal-{seq:08d}.log"

    def sequences(self) -> list[int]:
        out = []
        for file_name in self.storage.list():
            match = _NAME.match(file_name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    # -- writing -------------------------------------------------------

    def append(self, seq: int, record: dict) -> int:
        """Durably append one record to segment ``seq``; returns the
        framed byte length written (observability: the tracer's
        ``wal.append`` events carry it).  The record is only considered
        applied once this returns — a crash mid-append leaves a torn
        tail that replay drops, which is correct because the in-memory
        apply for that record never ran."""
        framed = frame(encode(record))
        self.storage.append(self.name(seq), framed)
        return len(framed)

    # -- reading -------------------------------------------------------

    def read_from(self, seq: int) -> WalReadResult:
        """Every record in segments ``>= seq``, ascending.

        Only the *final* segment may legitimately end in a torn tail (a
        crash mid-append); an earlier segment was sealed by the
        checkpoint that superseded it, so a tear there is corruption at
        rest and raises :class:`CorruptLogError`.
        """
        result = WalReadResult()
        chain = [s for s in self.sequences() if s >= seq]
        for index, segment in enumerate(chain):
            scan = read_frames(self.storage.read(self.name(segment)))
            if not scan.clean and index != len(chain) - 1:
                raise CorruptLogError(
                    f"WAL segment {segment} has {scan.truncated_bytes} torn "
                    "bytes but is not the final segment: corrupted at rest"
                )
            for payload in scan.payloads:
                record = decode(payload)
                if not isinstance(record, dict) or "kind" not in record:
                    raise CorruptLogError("WAL record is not a tagged mapping")
                result.records.append(record)
            result.segments.append(segment)
            result.truncated_bytes = scan.truncated_bytes
        return result

    def prune_below(self, seq: int) -> None:
        """Drop segments older than ``seq`` (their records are covered
        by every retained checkpoint)."""
        for segment in self.sequences():
            if segment < seq:
                self.storage.remove(self.name(segment))

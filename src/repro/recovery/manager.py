"""Durable streaming views: checkpoint + WAL + replay orchestration.

A :class:`RecoveryManager` makes a set of registered streams — each a
(:class:`~repro.stream.view.MaterializedView`,
:class:`~repro.stream.window.Window`) pair — survive process death:

* every applied :class:`~repro.stream.window.TickDelta` is appended to
  the write-ahead log *before* the in-memory apply runs (WAL rule: a
  tick whose record is not durable never happened; a tick whose record
  is durable is replayable);
* every ``checkpoint_every`` applies, the full state — database
  (input-fact log, derived tables, tags, statistics), view (baseline,
  current state, delta history, durable cursors), window live-set —
  is snapshotted into an atomically swapped checkpoint file and the WAL
  rolls to a fresh segment;
* named subscription cursors are logged on every poll, so consumers
  resume exactly-once.

:func:`recover` inverts the process: load the newest checkpoint that
validates (falling back past corrupt ones), rebuild the views/databases
onto fresh provenance instances, then *maintain over the WAL tail* —
each logged delta is re-applied through the ordinary DRed maintain
path, after verifying the deterministic stream source regenerates the
identical delta (the WAL is a log of what was applied, and the source
is a pure function of the tick, so disagreement means corruption).

The checkpoint payload layout doubles as a compact database
export/import interchange (:func:`export_database` /
:func:`import_database`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .checkpoint import CheckpointStore, pack_payload, unpack_payload
from .storage import LocalStorage
from .wal import WriteAheadLog
from ..errors import CheckpointMismatchError, CorruptLogError, LobsterError
from ..obs import NULL_TRACER
from ..runtime.database import Database
from ..stream.view import MaterializedView, ViewDelta
from ..stream.window import TickDelta, Window

__all__ = [
    "RecoveryInfo",
    "RecoveryManager",
    "export_database",
    "import_database",
    "recover",
]


@dataclass
class StreamEntry:
    """One durable stream: its view and its (deterministic) feed."""

    view: MaterializedView
    feed: Window


class RecoveryManager:
    """Checkpoint + WAL writer for a set of registered streams."""

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        checkpoint_every: int = 8,
        keep_checkpoints: int = 2,
        storage: LocalStorage | None = None,
    ):
        """``checkpoint_every`` applied deltas trigger a checkpoint
        (higher = cheaper steady state, longer WAL tail to replay after
        a crash — ``benchmarks/bench_recovery.py`` measures the trade).
        ``keep_checkpoints`` older checkpoints (with their WAL segments)
        are retained so a checkpoint corrupted at rest still recovers.
        ``storage`` overrides the byte-level backend (the fault-injection
        harness substitutes a crashing one)."""
        if storage is None:
            if directory is None:
                raise LobsterError("pass a directory or a storage backend")
            storage = LocalStorage(directory)
        if checkpoint_every < 1:
            raise LobsterError("checkpoint_every must be >= 1 applied delta")
        if keep_checkpoints < 1:
            raise LobsterError("keep_checkpoints must be >= 1")
        self.storage = storage
        self.checkpoints = CheckpointStore(storage)
        self.wal = WriteAheadLog(storage)
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        self.streams: dict[str, StreamEntry] = {}
        #: Tracing attachments (set by the stream scheduler around a
        #: durable tick): WAL appends and checkpoint swaps become
        #: instant events under ``trace_parent`` at the tracer's modeled
        #: cursor.  Durability has no modeled device cost, so instants —
        #: not duration spans — are the honest representation.
        self.tracer = NULL_TRACER
        self.trace_parent = None
        existing = self.checkpoints.sequences()
        #: Sequence of the newest durable checkpoint; None until the
        #: lazy baseline (checkpoint 0) is written.  WAL appends target
        #: segment ``_seq``.
        self._seq: int | None = existing[-1] if existing else None
        self._applies_since = 0

    # ------------------------------------------------------------------

    def register(self, name: str, view: MaterializedView, feed: Window) -> None:
        """Attach one stream.  The view's named-subscription cursors
        start flowing into the WAL from here on.  Register *before*
        advancing the feed: if no checkpoint exists yet, the baseline is
        cut here, and it must capture the feed at the same tick as the
        view (a baseline snapshotted mid-advance would silently skip the
        in-flight tick on recovery)."""
        if name in self.streams:
            raise LobsterError(f"stream {name!r} is already registered")
        self.streams[name] = StreamEntry(view, feed)
        view.cursor_listener = (
            lambda sub, cursor, epoch, _stream=name: self._log_cursor(
                _stream, sub, cursor, epoch
            )
        )
        self._ensure_baseline()

    def entry(self, name: str) -> StreamEntry:
        entry = self.streams.get(name)
        if entry is None:
            raise LobsterError(
                f"stream {name!r} is not registered with this manager"
            )
        return entry

    # ------------------------------------------------------------------

    def _ensure_baseline(self) -> None:
        """Write checkpoint 0 (pre-stream state) at first registration,
        so replay always has a floor to maintain from."""
        if self._seq is None:
            self._seq = 0
            self.checkpoints.save(0, self._payload())

    def _payload(self) -> dict:
        return {
            "streams": {
                name: {
                    "provenance": entry.view.engine.provenance_name,
                    "view": entry.view.state_dict(),
                    "feed": entry.feed.state_dict(),
                    "database": entry.view.database.state_dict(),
                }
                for name, entry in self.streams.items()
            }
        }

    def apply(self, name: str, delta: TickDelta, runner=None) -> ViewDelta:
        """Durably apply one tick delta to one stream's view: WAL-append
        first (the durability point), then the in-memory apply, then a
        checkpoint if the cadence is due.  A crash anywhere in between
        is recoverable: before the append the tick never happened (the
        live source regenerates it); after, replay re-applies it."""
        entry = self.entry(name)
        nbytes = self.wal.append(
            self._seq,
            {"kind": "delta", "stream": name, "delta": delta.state_dict()},
        )
        if self.tracer.enabled:
            self.tracer.event(
                "wal.append",
                parent=self.trace_parent,
                stream=name,
                segment=self._seq,
                bytes=nbytes,
            )
        view_delta = entry.view.apply(delta, runner=runner)
        self._applies_since += 1
        if self._applies_since >= self.checkpoint_every:
            self.checkpoint()
        return view_delta

    def _log_cursor(self, stream: str, sub: str, cursor: int, epoch: int) -> None:
        nbytes = self.wal.append(
            self._seq,
            {
                "kind": "cursor",
                "stream": stream,
                "sub": sub,
                "cursor": cursor,
                "epoch": epoch,
            },
        )
        if self.tracer.enabled:
            self.tracer.event(
                "wal.cursor",
                parent=self.trace_parent,
                stream=stream,
                sub=sub,
                bytes=nbytes,
            )

    def checkpoint(self) -> int:
        """Snapshot all streams now (atomic swap), roll the WAL to a
        fresh segment, and prune history past ``keep_checkpoints``.
        Returns the new checkpoint sequence."""
        self._ensure_baseline()
        self._seq += 1
        self.checkpoints.save(self._seq, self._payload())
        if self.tracer.enabled:
            self.tracer.event(
                "checkpoint.swap", parent=self.trace_parent, seq=self._seq
            )
        self._applies_since = 0
        retained = self.checkpoints.prune(self.keep_checkpoints)
        if retained:
            self.wal.prune_below(retained[0])
        return self._seq


@dataclass
class RecoveryInfo:
    """What :func:`recover` did, for logging and assertions."""

    #: No durable state existed; views started fresh at tick 0.
    cold_start: bool = False
    #: Sequence of the checkpoint restored from (None on cold start).
    checkpoint_seq: int | None = None
    #: Tick deltas re-applied from the WAL tail.
    replayed_deltas: int = 0
    #: Cursor records applied from the WAL tail.
    replayed_cursors: int = 0
    #: Torn-tail bytes silently truncated from the final WAL segment.
    truncated_bytes: int = 0
    #: WAL segments read, ascending.
    segments: list[int] = field(default_factory=list)


def recover(
    directory: str | Path | None,
    setups: dict,
    *,
    checkpoint_every: int = 8,
    keep_checkpoints: int = 2,
    runner=None,
    storage: LocalStorage | None = None,
) -> tuple[RecoveryManager, dict[str, MaterializedView], RecoveryInfo]:
    """Resume (or cold-start) durable streams from ``directory``.

    ``setups`` maps stream names to ``(engine, feed)`` pairs — the same
    program/semiring and window shape the writer used; mismatches raise
    :class:`~repro.errors.CheckpointMismatchError`.  A setup may carry a
    third element, ``init(database)``, which seeds static facts into a
    *cold-started* stream's database (warm recovery restores those facts
    from the checkpoint instead).  Returns the manager (resume applying
    through it), the restored views by name, and a :class:`RecoveryInfo`.

    Replay is *verified*: windows are deterministic functions of the
    tick, so each logged delta is regenerated by re-advancing the
    restored feed and compared to the log — a disagreement means the log
    (or checkpoint) is corrupt beyond the torn-tail case and raises
    :class:`~repro.errors.CorruptLogError` rather than applying bad
    data.  ``runner`` overrides how replayed maintain passes execute
    (e.g. a scheduler's pinned session step).
    """
    manager = RecoveryManager(
        directory,
        checkpoint_every=checkpoint_every,
        keep_checkpoints=keep_checkpoints,
        storage=storage,
    )
    info = RecoveryInfo()
    latest = manager.checkpoints.latest()
    views: dict[str, MaterializedView] = {}

    def cold_view(name: str, setup) -> MaterializedView:
        engine, feed = setup[0], setup[1]
        feed.reset()
        database = engine.create_database()
        if len(setup) > 2 and setup[2] is not None:
            setup[2](database)
        view = MaterializedView(engine, database=database, name=name)
        manager.register(name, view, feed)
        return view

    if latest is None:
        info.cold_start = True
        for name, setup in setups.items():
            views[name] = cold_view(name, setup)
        return manager, views, info

    seq, payload = latest
    info.checkpoint_seq = seq
    streams_state = payload["streams"]
    for name in streams_state:
        if name not in setups:
            raise CheckpointMismatchError(
                f"checkpoint holds stream {name!r} but no setup was "
                "registered for it — recovery cannot drop state silently"
            )
    for name, setup in setups.items():
        engine, feed = setup[0], setup[1]
        state = streams_state.get(name)
        if state is None:
            # A stream added since the checkpoint: starts cold.
            views[name] = cold_view(name, setup)
            continue
        if state["provenance"] != engine.provenance_name:
            raise CheckpointMismatchError(
                f"stream {name!r} was checkpointed under provenance "
                f"{state['provenance']!r} but the engine runs "
                f"{engine.provenance_name!r}"
            )
        database = Database.from_state(
            state["database"], engine._provenance_factory()
        )
        view = MaterializedView(engine, database=database, name=name)
        view.restore_state(state["view"])
        feed.load_state(state["feed"])
        manager.register(name, view, feed)
        views[name] = view
    manager._seq = seq

    tail = manager.wal.read_from(seq)
    info.truncated_bytes = tail.truncated_bytes
    info.segments = tail.segments
    for record in tail.records:
        kind = record["kind"]
        if kind == "delta":
            entry = manager.streams.get(record["stream"])
            if entry is None:
                raise CheckpointMismatchError(
                    f"WAL names stream {record['stream']!r} with no setup"
                )
            logged = TickDelta.from_state(record["delta"])
            if logged.tick < entry.feed.next_tick:
                # Already inside the restored checkpoint (a stale-
                # checkpoint fallback replays an older segment whose
                # head the newer state has absorbed).
                continue
            regenerated = entry.feed.advance()
            for _ in range(logged.ticks_covered - 1):
                regenerated = regenerated.merged_with(entry.feed.advance())
            if regenerated != logged:
                raise CorruptLogError(
                    f"WAL delta for stream {record['stream']!r} tick "
                    f"{logged.tick} disagrees with the deterministic "
                    "stream source — the log does not describe this feed"
                )
            entry.view.apply(logged, runner=runner)
            info.replayed_deltas += 1
        elif kind == "cursor":
            entry = manager.streams.get(record["stream"])
            if entry is not None:
                entry.view._recovered_cursors[record["sub"]] = (
                    int(record["cursor"]),
                    int(record["epoch"]),
                )
            info.replayed_cursors += 1
        else:
            raise CorruptLogError(f"unknown WAL record kind {kind!r}")
    manager._applies_since = info.replayed_deltas
    if manager._applies_since >= manager.checkpoint_every:
        manager.checkpoint()
    return manager, views, info


# ----------------------------------------------------------------------
# Database export / import (the checkpoint format as an interchange)


def export_database(path: str | Path, database: Database) -> None:
    """Write one database's full state (facts, probabilities, derived
    tables, tags, statistics) to ``path`` as a CRC-framed, atomically
    swapped file — the checkpoint payload layout, usable as a compact
    interchange between processes."""
    path = Path(path)
    payload = {
        "provenance": database.provenance.name,
        "database": database.state_dict(),
    }
    storage = LocalStorage(path.parent)
    storage.write_atomic(path.name, pack_payload(payload, kind="database-export"))


def import_database(path: str | Path, engine) -> Database:
    """Load a database exported by :func:`export_database` onto
    ``engine``'s semiring.  The export's provenance must match the
    engine's (:class:`~repro.errors.CheckpointMismatchError` otherwise);
    CRC or structural failures raise
    :class:`~repro.errors.CorruptLogError`."""
    _, payload = unpack_payload(
        Path(path).read_bytes(), kind="database-export"
    )
    if payload["provenance"] != engine.provenance_name:
        raise CheckpointMismatchError(
            f"export was written under provenance {payload['provenance']!r} "
            f"but the engine runs {engine.provenance_name!r}"
        )
    return Database.from_state(payload["database"], engine._provenance_factory())

"""Tracing overhead and determinism gates for the obs/ subsystem.

Observability that perturbs the system under observation is worse than
none, so the tracer ships with two hard gates, both benchmarked here on
the serving workload (the hottest instrumented path):

* **off == free** — a scheduler constructed without a tracer and one
  constructed with the NULL_TRACER produce *bitwise identical* modeled
  results (latencies, busy seconds, makespan): the disabled
  instrumentation sites cost one attribute read and change nothing;
* **on < 5% wall overhead** — full span collection (without per-kernel
  spans, the opt-in firehose) costs under 5% host wall time against the
  untraced baseline at full benchmark size.  Wall time is measured over
  several trials with a warmup; the gate is skipped under
  ``LOBSTER_OBS_TINY=1`` where launch latency dominates and the ratio
  is noise;
* **determinism** — two same-seed traced runs export byte-identical
  Perfetto JSON (the replay property the whole obs/ design serves).
"""

from __future__ import annotations

import os

import pytest

from repro import LoadGenerator, LobsterEngine, ProgramCache, Scheduler, Tracer
from repro.obs import NULL_TRACER, dumps_trace_events, validate_trace_events
from repro.obs import to_trace_events
from repro.workloads.analytics import TRANSITIVE_CLOSURE

from _harness import print_table, record, report, timed

SUITE = "obs"

TINY = bool(os.environ.get("LOBSTER_OBS_TINY"))
N_REQUESTS = 20 if TINY else 120
N_NODES, N_EDGES = (10, 20) if TINY else (18, 40)
WALL_TRIALS = 2 if TINY else 4
SEED = 29
OVERHEAD_GATE = 0.05


def make_factory(engine):
    def make_database(rng, index):
        edges = sorted(
            {
                (int(a), int(b))
                for a, b in rng.integers(0, N_NODES, size=(N_EDGES, 2))
                if a != b
            }
        )
        db = engine.create_database()
        db.add_facts("edge", edges, probs=[0.9] * len(edges))
        return db, {}

    return make_database


def serve_once(tracer):
    """One full serving drain on a fresh engine + fresh program cache
    (so cache_hit span attributes match run to run)."""
    engine = LobsterEngine(
        TRANSITIVE_CLOSURE, provenance="minmaxprob", cache=ProgramCache()
    )
    gen = LoadGenerator(
        engine, make_factory(engine), rate_hz=3000.0, n_requests=N_REQUESTS,
        seed=SEED,
    )
    scheduler = Scheduler(n_devices=2, tracer=tracer)
    return scheduler.run(gen.generate())


def wall_measurement(tracer_factory, trials=WALL_TRIALS):
    """Multi-trial host wall time of a serving drain; one untimed warmup
    (shared harness path — same statistics as every other suite)."""
    return timed(lambda: serve_once(tracer_factory()), trials=trials, warmups=1)


@pytest.fixture(scope="module")
def measurements():
    untraced = serve_once(None)
    nulled = serve_once(NULL_TRACER)
    traced_tracer = Tracer(seed=SEED)
    traced = serve_once(traced_tracer)
    wall_off = wall_measurement(lambda: None)
    wall_on = wall_measurement(lambda: Tracer(seed=SEED))
    report(SUITE, "serving-drain/untraced", wall_off, requests=N_REQUESTS)
    report(SUITE, "serving-drain/traced", wall_on, requests=N_REQUESTS)
    return untraced, nulled, traced, traced_tracer, wall_off, wall_on


def test_disabled_tracer_is_bitwise_free(measurements, benchmark):
    untraced, nulled, traced, _, _, _ = measurements

    def check():
        for other in (nulled, traced):
            assert other.completed == untraced.completed
            assert other.makespan_s == untraced.makespan_s
            assert [o.latency_s for o in other.outcomes] == [
                o.latency_s for o in untraced.outcomes
            ]
            assert [o.service_s for o in other.outcomes] == [
                o.service_s for o in untraced.outcomes
            ]
        print_table(
            "tracing neutrality (modeled results)",
            ["config", "completed", "makespan ms"],
            [
                [name, rep.completed, f"{rep.makespan_s * 1e3:.6f}"]
                for name, rep in (
                    ("untraced", untraced),
                    ("null tracer", nulled),
                    ("full tracing", traced),
                )
            ],
        )

    record(benchmark, check)


def test_wall_overhead_under_gate(measurements, benchmark):
    _, _, _, tracer, wall_off, wall_on = measurements

    def check():
        overhead = wall_on.seconds / wall_off.seconds - 1.0
        print_table(
            "tracing wall overhead",
            ["config", "wall time", "spans", "overhead"],
            [
                ["untraced", wall_off.label, "-", "-"],
                [
                    "traced",
                    wall_on.label,
                    len(tracer.spans),
                    f"{overhead * 100:+.1f}%",
                ],
            ],
        )
        assert tracer.spans  # the traced run really collected a timeline
        if TINY:
            pytest.skip("tiny inputs: wall ratio is launch-latency noise")
        assert overhead < OVERHEAD_GATE, (
            f"tracing overhead {overhead * 100:.1f}% exceeds "
            f"{OVERHEAD_GATE * 100:.0f}% gate"
        )

    record(benchmark, check)


def test_same_seed_runs_export_identical_json(measurements, benchmark):
    def check():
        a, b = Tracer(seed=SEED), Tracer(seed=SEED)
        serve_once(a)
        serve_once(b)
        blob_a, blob_b = dumps_trace_events(a.spans), dumps_trace_events(b.spans)
        assert blob_a == blob_b
        n_events = validate_trace_events(to_trace_events(a.spans))
        print_table(
            "trace determinism",
            ["run", "spans", "events", "json bytes"],
            [
                ["seed 29 / A", len(a.spans), n_events, len(blob_a)],
                ["seed 29 / B", len(b.spans), n_events, len(blob_b)],
            ],
        )

    record(benchmark, check)

"""Live subscriptions: cursors over a materialized view's delta stream.

A :class:`Subscription` is a durable read position into a
:class:`~repro.stream.view.MaterializedView`'s retained
:class:`~repro.stream.view.ViewDelta` log.  Consumers either *poll*
(:meth:`Subscription.poll` returns everything applied since the last
poll) or register a push callback at :meth:`MaterializedView.subscribe`
time and receive each delta as it is emitted — both see the identical,
ordered stream.

Because view deltas obey the conservation law, a subscription holding
the full history can :meth:`replay` the stream over the view's baseline
and land bit-for-bit on the current state.  If the view has pruned
history past a subscription's cursor (bounded ``max_history``, or a
:meth:`~repro.stream.view.MaterializedView.refresh`), the subscription
raises :class:`~repro.errors.StaleViewError` rather than silently
skipping deltas.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..errors import StaleViewError

if TYPE_CHECKING:
    from .view import MaterializedView, RelationState, ViewDelta

__all__ = ["Subscription", "replay_deltas"]


def replay_deltas(
    baseline: "dict[str, RelationState]", deltas: "list[ViewDelta]"
) -> "dict[str, RelationState]":
    """Apply a delta sequence over a baseline state: for each relation,
    drop the retracted (row, prob) pairs and add the inserted ones.
    This is the conservation law as an executable definition — replaying
    a view's full history reconstructs its current state exactly."""
    state = {relation: dict(rows) for relation, rows in baseline.items()}
    for delta in deltas:
        for relation, pairs in delta.retracted.items():
            rows = state.setdefault(relation, {})
            for row, prob in pairs:
                if rows.get(row) == prob:
                    del rows[row]
        for relation, pairs in delta.inserted.items():
            rows = state.setdefault(relation, {})
            for row, prob in pairs:
                rows[row] = prob
    return state


class Subscription:
    """A read cursor (plus optional push callback) on one view."""

    def __init__(
        self,
        view: "MaterializedView",
        cursor: int,
        callback: "Callable[[ViewDelta], None] | None" = None,
    ):
        self.view = view
        #: Absolute tick index of the next delta this subscription reads.
        self.cursor = cursor
        self.callback = callback
        self.delivered = 0
        #: Durable-cursor identity (``subscribe(name=...)``); None for an
        #: anonymous subscription whose position dies with the process.
        self.name: str | None = None
        #: The view epoch this subscription belongs to; a refresh()
        #: re-baselines the view into a new epoch, and older
        #: subscriptions must fail loudly even if fully caught up.
        self.epoch = 0

    # ------------------------------------------------------------------

    def _notify(self, delta: "ViewDelta") -> None:
        if self.callback is not None:
            self.callback(delta)
            self.delivered += 1

    @property
    def lag(self) -> int:
        """Ticks applied to the view but not yet polled here."""
        return self.view.ticks_applied - self.cursor

    def poll(self) -> "list[ViewDelta]":
        """All deltas applied since the last poll, oldest first.

        Raises :class:`~repro.errors.StaleViewError` when the view has
        pruned history past this cursor — the stream cannot be resumed
        without loss, so the consumer must re-baseline (re-subscribe or
        read the view's current state)."""
        if self.epoch != self.view._epoch:
            raise StaleViewError(
                f"subscription predates a refresh() of view "
                f"{self.view.name!r}: the baseline changed out-of-band, "
                "so the delta stream cannot resume — re-subscribe"
            )
        pruned = self.view.pruned_ticks
        if self.cursor < pruned:
            raise StaleViewError(
                f"subscription cursor at tick {self.cursor} but view "
                f"{self.view.name!r} has pruned history through tick "
                f"{pruned - 1}; re-subscribe (or raise max_history)"
            )
        deltas = self.view.history[self.cursor - pruned :]
        moved = self.view.ticks_applied != self.cursor
        self.cursor = self.view.ticks_applied
        if moved:
            # Durable cursors acknowledge *before* the consumer sees the
            # deltas: the poll's position is logged synchronously, so a
            # crash after this return never re-delivers these deltas.
            self.view._cursor_moved(self)
        return deltas

    def replay(self) -> "dict[str, RelationState]":
        """Reconstruct the view's current state from tick 0: baseline +
        full retained history.  Requires nothing to have been pruned."""
        if self.view.pruned_ticks:
            raise StaleViewError(
                f"view {self.view.name!r} pruned {self.view.pruned_ticks} "
                "tick(s); full replay from tick 0 is no longer possible"
            )
        return replay_deltas(self.view.baseline(), self.view.history)

"""Exception hierarchy for the repro package.

Every error raised by the compiler, runtime, or device derives from
:class:`LobsterError` so applications can catch framework failures with a
single except clause.
"""

from __future__ import annotations


class LobsterError(Exception):
    """Base class for all errors raised by this framework."""


class ParseError(LobsterError):
    """Raised when Datalog source text cannot be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ResolutionError(LobsterError):
    """Raised when a program refers to undeclared relations or variables."""


class StratificationError(LobsterError):
    """Raised when a program cannot be stratified (e.g. negation cycles)."""


class CompileError(LobsterError):
    """Raised when RAM cannot be lowered to APM."""


class ExecutionError(LobsterError):
    """Raised when an APM program fails at runtime."""


class DeviceOutOfMemory(ExecutionError):
    """Raised when an allocation exceeds the virtual device's capacity.

    Mirrors a CUDA out-of-memory failure; benchmark harnesses catch this to
    report "OOM" rows as in Table 3 of the paper.
    """


class EvaluationTimeout(LobsterError):
    """Raised by baseline engines when a configured wall-clock budget expires.

    Used to reproduce the paper's 2-hour ProbLog timeouts at a smaller scale.
    """


class ProvenanceError(LobsterError):
    """Raised on invalid tag operations (e.g. proof capacity overflow)."""


class SessionError(LobsterError):
    """Raised on invalid session ticket operations."""


class UnknownTicketError(SessionError):
    """Raised when a session is asked about a ticket it never issued."""

    def __init__(self, ticket: int):
        self.ticket = ticket
        super().__init__(
            f"unknown session ticket {ticket}: this session never issued it"
        )


class TicketNotRunError(SessionError):
    """Raised when a ticket's result is requested before the query ran
    (submit it and drain the session first)."""

    def __init__(self, ticket: int):
        self.ticket = ticket
        super().__init__(
            f"ticket {ticket} has not been run yet: call run_all() (or "
            "run_batch) to drain the session before reading its result"
        )

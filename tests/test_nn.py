"""Autodiff substrate tests: gradient checks and training smoke tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Classifier,
    Linear,
    NeurosymbolicFunction,
    PatchScorer,
    SGD,
    Tensor,
    binary_cross_entropy,
    mse,
    nll,
)
from repro import LobsterEngine


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    out = np.zeros_like(x)
    flat = x.reshape(-1)
    grad = out.reshape(-1)
    for i in range(len(flat)):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        grad[i] = (up - down) / (2 * eps)
    return out


class TestAutodiff:
    @pytest.mark.parametrize(
        "build",
        [
            lambda a, b: (a * b).sum(),
            lambda a, b: (a + b * 2.0).sum(),
            lambda a, b: (a @ b).sum(),
            lambda a, b: (a - b).relu().sum(),
            lambda a, b: a.sigmoid().sum() + b.tanh().sum(),
            lambda a, b: (a.softmax() * b).sum(),
            lambda a, b: (a / (b + 3.0)).sum(),
            lambda a, b: a.exp().log().sum() + b.sum(axis=0).sum(),
        ],
    )
    def test_gradcheck(self, build):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 3)) + 0.5, requires_grad=True)
        out = build(a, b)
        out.backward()
        for tensor in (a, b):
            expected = numeric_grad(lambda: build(Tensor(a.data), Tensor(b.data)).data, tensor.data)
            assert np.allclose(tensor.grad, expected, atol=1e-4), build

    def test_grad_accumulates_on_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = (a * a).sum()  # d/da = 2a = 4
        out.backward()
        assert a.grad[0] == pytest.approx(4.0)

    def test_broadcast_unreduction(self):
        a = Tensor(np.ones((3, 1)), requires_grad=True)
        b = Tensor(np.ones((1, 4)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 1) and a.grad[0, 0] == 4
        assert b.grad.shape == (1, 4) and b.grad[0, 0] == 3

    def test_take_rows_scatter(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        picked = a.take_rows(np.array([0, 0, 3]))
        picked.sum().backward()
        assert a.grad.tolist() == [2.0, 0.0, 0.0, 1.0, 0.0]


class TestLossFunctions:
    def test_bce_matches_formula(self):
        pred = Tensor(np.array([0.8, 0.3]), requires_grad=True)
        loss = binary_cross_entropy(pred, np.array([1.0, 0.0]))
        expected = -(np.log(0.8) + np.log(0.7)) / 2
        assert loss.data == pytest.approx(expected)

    def test_nll_gradient(self):
        probs = Tensor(np.array([[0.2, 0.8], [0.6, 0.4]]), requires_grad=True)
        loss = nll(probs, np.array([1, 0]))
        loss.backward()
        assert probs.grad[0, 1] == pytest.approx(-1 / (2 * 0.8))
        assert probs.grad[1, 1] == 0.0

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse(pred, np.array([0.0, 0.0]))
        assert loss.data == pytest.approx(2.5)


class TestTraining:
    def test_sgd_linear_regression(self):
        rng = np.random.default_rng(1)
        true_w = np.array([[2.0], [-3.0]])
        X = rng.normal(size=(128, 2))
        y = (X @ true_w).reshape(-1)
        layer = Linear(2, 1, rng)
        opt = SGD(layer.parameters(), lr=0.1)
        for _ in range(150):
            opt.zero_grad()
            pred = layer(Tensor(X)).reshape(-1)
            loss = mse(pred, y)
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, true_w, atol=0.05)

    def test_adam_classifier_learns(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(96, 4))
        labels = (X[:, 0] > 0).astype(int)
        model = Classifier(4, 16, 2, rng)
        opt = Adam(model.parameters(), lr=0.02)
        for _ in range(120):
            opt.zero_grad()
            probs = model(Tensor(X))
            loss = nll(probs, labels)
            loss.backward()
            opt.step()
        accuracy = (probs.data.argmax(axis=1) == labels).mean()
        assert accuracy > 0.9

    def test_patch_scorer_shapes(self):
        rng = np.random.default_rng(3)
        scorer = PatchScorer(8, 12, rng)
        out = scorer(Tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5,)
        assert ((out.data >= 0) & (out.data <= 1)).all()


class TestNeurosymbolicBridge:
    def test_end_to_end_gradient_flow(self):
        """Gradients flow through the Datalog engine into a parameter."""
        engine = LobsterEngine(
            "rel reach(x, y) :- conn(x, y) or (reach(x, z) and conn(z, y)).",
            provenance="diff-top-1-proofs",
            proof_capacity=8,
        )
        rows = [(0, 1), (1, 2)]

        def populate(db, probs):
            return db.add_facts("conn", rows, probs=list(probs))

        layer = NeurosymbolicFunction(engine, populate, "reach", [(0, 2)])
        logits = Tensor(np.array([0.0, 0.0]), requires_grad=True)
        probs = logits.sigmoid()
        out = layer(probs)
        assert out.data[0] == pytest.approx(0.25)
        loss = binary_cross_entropy(out, np.array([1.0]))
        loss.backward()
        # Increasing either logit increases reach probability -> negative
        # gradient of the BCE(target=1) loss.
        assert (logits.grad < 0).all()

    def test_training_loop_improves_probability(self):
        engine = LobsterEngine(
            "rel reach(x, y) :- conn(x, y) or (reach(x, z) and conn(z, y)).",
            provenance="diff-top-1-proofs",
            proof_capacity=8,
        )
        rows = [(0, 1), (1, 2), (0, 2)]

        def populate(db, probs):
            return db.add_facts("conn", rows, probs=list(probs))

        layer = NeurosymbolicFunction(engine, populate, "reach", [(0, 2)])
        logits = Tensor(np.zeros(3), requires_grad=True)
        opt = SGD([logits], lr=1.0)
        first = None
        for _ in range(25):
            opt.zero_grad()
            out = layer(logits.sigmoid())
            if first is None:
                first = float(out.data[0])
            loss = binary_cross_entropy(out, np.array([1.0]))
            loss.backward()
            opt.step()
        final = float(layer(logits.sigmoid()).data[0])
        assert final > first + 0.3

"""Online serving quickstart: SLO classes, micro-batching, load shedding.

One compiled transitive-closure program serves a mixed open-loop stream
— latency-sensitive ``interactive`` queries and throughput-oriented
``batch`` queries — over a two-device pool.  Arrivals come from a
seeded Poisson process and every latency is *modeled* (the device cost
model drives the serve clock), so this script prints the same numbers
on every run.

Walkthrough: the scheduler coalesces compatible requests (same compiled
program) into micro-batches, dispatches them onto the least-loaded free
device, sheds requests whose deadline expired while queued, and the
admission controller turns overload into explicit rejections instead of
unbounded queues.
"""

from __future__ import annotations

from repro import LoadGenerator, LobsterEngine, Scheduler, SLOClass
from repro.dist import DevicePool
from repro.workloads.analytics import TRANSITIVE_CLOSURE


def make_database_factory(engine):
    def make_database(rng, index):
        n_nodes = 18
        pairs = rng.integers(0, n_nodes, size=(40, 2))
        edges = sorted({(int(a), int(b)) for a, b in pairs if a != b})
        db = engine.create_database()
        db.add_facts("edge", edges, probs=[0.9] * len(edges))
        return db

    return make_database


def serve(rate_hz: float, n_devices: int = 2):
    engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="minmaxprob")
    classes = {
        "interactive": SLOClass(
            "interactive", deadline_s=0.005, max_batch_delay_s=0.0005,
            max_batch_size=4, queue_limit=32, priority=0,
        ),
        "batch": SLOClass(
            "batch", deadline_s=0.05, max_batch_delay_s=0.005,
            max_batch_size=16, queue_limit=128, priority=1,
        ),
    }
    generator = LoadGenerator(
        engine,
        make_database_factory(engine),
        rate_hz=rate_hz,
        n_requests=120,
        seed=7,
        pattern="bursty",
        class_mix={"interactive": 0.7, "batch": 0.3},
    )
    scheduler = Scheduler(
        DevicePool(n_devices, policy="least-loaded"), classes=classes
    )
    return scheduler.run(generator.generate())


def main() -> None:
    print("Offered load sweep over a 2-device pool (bursty arrivals)\n")
    header = f"{'offered':>9}  {'done':>4}  {'shed+rej':>8}  {'p99 int.':>9}  {'goodput':>8}"
    print(header)
    for rate in (1000.0, 16000.0, 128000.0):
        report = serve(rate)
        p99 = report.p99_latency_s("interactive")
        print(
            f"{rate:>7.0f}/s  {report.completed:>4}  "
            f"{report.rejected + report.shed:>8}  "
            f"{p99 * 1e3:>7.3f}ms  {report.goodput_rps:>6.0f}/s"
        )

    print("\nFull metrics for the overloaded point:\n")
    report = serve(128000.0)
    print(report.render())

    refused = [o for o in report.outcomes if o.status != "completed"]
    if refused:
        print("\nFirst refusal:", refused[0].status, "—", refused[0].reason)


if __name__ == "__main__":
    main()

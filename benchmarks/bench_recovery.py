"""Durability overhead and recovery-time characteristics.

Two questions a deployment has to answer before turning checkpointing
on:

* **How fast is recovery, and what does it scale with?**  Recovery cost
  is (checkpoint load) + (WAL-tail replay), and the tail length is
  bounded by the checkpoint interval — so we measure wall-clock
  ``recover()`` time against the number of deltas in the tail and
  assert it grows with the tail, not with the total stream length
  (recovering a 10x longer stream behind the same interval costs the
  same).
* **What does the checkpoint interval trade?**  Short intervals pay
  frequent full-state snapshots during normal operation but replay a
  short tail after a crash; long intervals invert that.  We sweep the
  interval and report both sides (steady-state durable-apply overhead,
  worst-case recovery time) so the knee is visible.

Results go to a versioned markdown summary under ``benchmarks/results/``
(`recovery-<stamp>.md`).  ``LOBSTER_RECOVERY_TINY=1`` shrinks sizes for
CI smoke.
"""

from __future__ import annotations

import datetime
import os
import platform
import shutil
import tempfile
from pathlib import Path

import pytest

from repro import (
    LobsterEngine,
    MaterializedView,
    RecoveryManager,
    __version__,
    recover,
)
from repro.stream import RelationStream, SlidingWindow

from _harness import Measurement, print_table, record, report, timed

SUITE = "recovery"

TINY = bool(os.environ.get("LOBSTER_RECOVERY_TINY"))

GRAPH_N = 16 if TINY else 40
PER_TICK = 3
WINDOW = 5 if TINY else 8
#: WAL-tail lengths (deltas past the last checkpoint) for the replay scan.
TAILS = [1, 4, 8] if TINY else [1, 4, 8, 16, 32]
#: Checkpoint intervals for the overhead/recovery trade sweep.
INTERVALS = [1, 4, 16] if TINY else [1, 2, 4, 8, 16, 32]
SWEEP_TICKS = max(INTERVALS) + 2
SEED = 11
RESULTS_DIR = Path(__file__).resolve().parent / "results"

PROGRAM = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""


def edges():
    return [(i, i + 1) for i in range(GRAPH_N)] + [
        (i, i + 5) for i in range(0, GRAPH_N - 5, 7)
    ]


def setup():
    engine = LobsterEngine(PROGRAM, provenance="minmaxprob")
    stream = RelationStream(
        "edge", edges(), PER_TICK, seed=SEED, prob_range=(0.5, 0.95)
    )
    return engine, SlidingWindow(stream, size=WINDOW)


def durable_run(root, n_ticks, checkpoint_every) -> Measurement:
    """Drive a fresh durable stream ``n_ticks`` forward; return the
    per-apply wall seconds (durability overhead included) as one
    multi-sample :class:`Measurement` — each apply advances state, so
    the ticks *are* the trials (no warmups, no re-running)."""
    engine, feed = setup()
    view = MaterializedView(engine, name="tc")
    manager = RecoveryManager(
        root, checkpoint_every=checkpoint_every, keep_checkpoints=2
    )
    manager.register("tc", view, feed)
    # warmups pinned to 0: every call advances the stream, so an
    # env-configured warmup would change how many ticks actually ran.
    return timed(
        lambda: manager.apply("tc", feed.advance()), trials=n_ticks, warmups=0
    )


def time_recover(root, repeats=3):
    """Multi-trial wall-clock ``recover()`` time against ``root``.  The
    cadence is disabled so a long replayed tail does not cut a trailing
    checkpoint on the first repeat (which would leave nothing for the
    others to replay)."""
    last = {}

    def go():
        _, _, last["info"] = recover(
            root, {"tc": setup()}, checkpoint_every=10_000
        )

    measurement = timed(go, trials=repeats, warmups=0)
    return measurement, last["info"]


def test_recovery_time_scales_with_tail_not_stream(benchmark):
    """Recovery = checkpoint load + tail replay; the tail is what you
    pay for, not how long the stream has been running."""

    def check():
        rows = []
        times = {}
        for tail in TAILS:
            root = tempfile.mkdtemp(prefix="lobster-bench-rec-")
            try:
                # One checkpoint cadence exactly `tail` short of the end:
                # run `tail` ticks past a forced checkpoint.
                engine, feed = setup()
                view = MaterializedView(engine, name="tc")
                manager = RecoveryManager(
                    root, checkpoint_every=10_000, keep_checkpoints=2
                )
                manager.register("tc", view, feed)
                for _ in range(4):
                    manager.apply("tc", feed.advance())
                manager.checkpoint()
                for _ in range(tail):
                    manager.apply("tc", feed.advance())
                measurement, info = time_recover(root)
                assert info.replayed_deltas == tail
                report(SUITE, f"recover/tail{tail}", measurement, tail=tail, tiny=TINY)
                times[tail] = measurement.seconds
                rows.append([f"{tail}", measurement.label])
            finally:
                shutil.rmtree(root)
        print_table(
            "Recovery time vs WAL-tail length",
            ["tail deltas", "recover (wall)"],
            rows,
        )
        # Longest tail must be measurably pricier than the shortest —
        # i.e. replay, not checkpoint load, dominates growth.
        assert times[TAILS[-1]] > times[TAILS[0]]
        _summaries["tail"] = rows

    record(benchmark, check)


def test_checkpoint_interval_tradeoff(benchmark):
    """Sweep the interval: steady-state overhead falls as checkpoints
    get rarer, worst-case recovery grows with the replayable tail."""

    def check():
        rows = []
        overheads = {}
        recoveries = {}
        for interval in INTERVALS:
            root = tempfile.mkdtemp(prefix="lobster-bench-ckpt-")
            try:
                applies = durable_run(root, SWEEP_TICKS, interval)
                recovery, info = time_recover(root)
                report(
                    SUITE, f"apply/interval{interval}", applies,
                    interval=interval, tiny=TINY,
                )
                report(
                    SUITE, f"recover/interval{interval}", recovery,
                    interval=interval, tiny=TINY,
                )
                overheads[interval] = applies.seconds
                recoveries[interval] = recovery.seconds
                rows.append(
                    [
                        f"{interval}",
                        applies.label,
                        f"{info.replayed_deltas}",
                        recovery.label,
                    ]
                )
            finally:
                shutil.rmtree(root)
        print_table(
            "Checkpoint-interval tradeoff",
            ["interval", "apply (wall)", "tail replayed", "recover (wall)"],
            rows,
        )
        # Every interval recovers to the same tick; the knobs only move
        # cost.  Checkpoint-every-tick must replay nothing.
        assert int(rows[0][2]) == 0
        _summaries["interval"] = rows

    record(benchmark, check)


_summaries: dict[str, list] = {}


def test_write_summary():
    """Persist the measured tables (runs last: alphabetical luck is not
    enough, so re-derive cheaply if a prior test was deselected)."""
    if not _summaries:
        pytest.skip("no measurements collected in this run")
    stamp = datetime.datetime.now()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"recovery-{stamp:%Y%m%d-%H%M%S}.md"
    lines = [
        f"# Durability & recovery summary — {stamp:%Y-%m-%d %H:%M:%S}",
        "",
        f"- lobster-repro version: `{__version__}`",
        f"- Python: `{platform.python_version()}` on `{platform.platform()}`",
        f"- mode: {'tiny (smoke sizes)' if TINY else 'full'}",
        "",
    ]
    if "tail" in _summaries:
        lines += [
            "## Recovery time vs WAL-tail length",
            "",
            "| tail deltas | recover (wall) |",
            "|---|---|",
            *(
                "| " + " | ".join(row) + " |"
                for row in _summaries["tail"]
            ),
            "",
        ]
    if "interval" in _summaries:
        lines += [
            "## Checkpoint-interval tradeoff",
            "",
            "| interval | apply (wall) | tail replayed | recover (wall) |",
            "|---|---|---|---|",
            *(
                "| " + " | ".join(row) + " |"
                for row in _summaries["interval"]
            ),
            "",
        ]
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out}")

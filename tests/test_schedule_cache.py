"""Memoization contract of apm/schedule.cached_plan.

The transfer plan is computed once per (compiled program, optimized
flag) and served by identity afterwards; distinct compiled programs —
even of identical source — must never share or clobber each other's
plans.
"""

from __future__ import annotations

from repro import LobsterEngine
from repro.apm.schedule import cached_plan, plan_transfers
from repro.runtime.cache import OptimizationConfig, compile_source

SOURCE = """
rel base(x, y) :- edge(x, y).
rel path(x, y) :- base(x, y) or (path(x, z) and base(z, y)).
rel reach(x) :- path(s, x), start(s).
query reach
"""


def _compile():
    return compile_source(SOURCE, "unit", OptimizationConfig(), False)


class TestCachedPlanMemoization:
    def test_hit_returns_the_identical_object(self):
        apm = _compile().apm
        first = cached_plan(apm, True)
        assert cached_plan(apm, True) is first  # memo hit, not a rebuild

    def test_optimized_and_naive_plans_are_cached_separately(self):
        apm = _compile().apm
        optimized = cached_plan(apm, True)
        naive = cached_plan(apm, False)
        assert cached_plan(apm, True) is optimized
        assert cached_plan(apm, False) is naive
        assert naive is not optimized

    def test_memoized_plan_matches_a_fresh_computation(self):
        apm = _compile().apm
        assert cached_plan(apm, True) == plan_transfers(apm, True)
        assert cached_plan(apm, False) == plan_transfers(apm, False)

    def test_independence_across_compiled_programs(self):
        """Two independently compiled artifacts of the *same* source get
        their own plan entries (keying is program identity, not content)."""
        apm_a = _compile().apm
        apm_b = _compile().apm
        assert apm_a is not apm_b
        plan_a = cached_plan(apm_a, True)
        plan_b = cached_plan(apm_b, True)
        assert plan_a is not plan_b  # separate memo entries
        assert plan_a == plan_b  # ... with equal content
        # Neither lookup invalidated the other's entry.
        assert cached_plan(apm_a, True) is plan_a
        assert cached_plan(apm_b, True) is plan_b

    def test_engines_sharing_a_cached_program_share_the_plan(self):
        engine_a = LobsterEngine(SOURCE, provenance="unit")
        engine_b = LobsterEngine(SOURCE, provenance="unit")
        assert engine_a.apm is engine_b.apm  # program cache shares the APM
        assert cached_plan(engine_a.apm, True) is cached_plan(engine_b.apm, True)

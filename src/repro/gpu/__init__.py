"""Virtual GPU substrate: device model, kernels, hash index, bytecode VM."""

from .bytecode import BytecodeProgram, Instr, execute
from .device import DeviceProfile, VirtualDevice
from .hash_table import HashIndex

__all__ = [
    "BytecodeProgram",
    "DeviceProfile",
    "HashIndex",
    "Instr",
    "VirtualDevice",
    "execute",
]

"""Elastic shard-set control for served engines.

An :class:`ElasticController` owns the detect → price → migrate loop for
one sharded :class:`~repro.runtime.engine.LobsterEngine` living behind
the serving schedulers:

* **detect** — after every micro-batch the scheduler calls
  :meth:`observe`, which snapshots the served database's per-relation
  row counts and (for the planner's keyed relations) heavy-hitter
  reports from the stats layer's count-min sketches, plus the batch's
  observed busy-seconds;
* **price** — between micro-batches :meth:`maybe_reshard` asks the
  :class:`~repro.dist.ReshardPlanner` to price the best candidate layout
  against the migration bill (rows that change owner × the exchange
  cost model);
* **migrate** — only when the priced payback strictly beats the
  migration cost does the controller swap the engine's
  :class:`~repro.dist.ShardMap` (growing or shrinking its device pool)
  via :meth:`LobsterEngine.reshard
  <repro.runtime.engine.LobsterEngine.reshard>`; the scheduler charges
  the modeled migration seconds to the engine's serve-clock horizon, so
  a migration delays the next batch exactly as a shuffle of the same
  bytes would.

Every decision is counted (``reshard.plans`` / ``reshard.migrations`` /
``reshard.declined``) and traced (a ``reshard.plan`` event per pricing,
a ``reshard.migrate`` span covering the modeled migration window), so a
serve trace shows *why* the shard set changed shape mid-stream.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from ..dist.partition import ShardMap
from ..dist.reshard import RelationLoad, ReshardPlan, ReshardPlanner
from ..obs import NULL_TRACER, Tracer
from ..stats.hotkeys import (
    DEFAULT_MASS_THRESHOLD,
    DEFAULT_TOP_K,
    hot_key_report,
)

__all__ = ["ElasticController"]


class ElasticController:
    """Observe served traffic, reprice the shard layout, migrate when it
    pays.  One controller manages exactly one engine."""

    def __init__(
        self,
        engine,
        planner: ReshardPlanner | None = None,
        *,
        key_columns: dict[str, int] | None = None,
        min_shards: int = 1,
        max_shards: int = 8,
        horizon_runs: int = 8,
        top_k: int = DEFAULT_TOP_K,
        mass_threshold: float = DEFAULT_MASS_THRESHOLD,
        cooldown_runs: int = 1,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        """``key_columns`` (``{predicate: column}``) names the relations
        whose key skew the controller watches; defaults to the engine's
        current :class:`ShardMap`'s keys.  ``cooldown_runs`` batches must
        be observed between migrations (a reshard invalidates the very
        observations that justified it)."""
        self.engine = engine
        if planner is None:
            if key_columns is None and engine.shard_map is not None:
                key_columns = engine.shard_map.key_columns
            planner = ReshardPlanner(
                key_columns,
                min_shards=min_shards,
                max_shards=max_shards,
                horizon_runs=horizon_runs,
            )
        self.planner = planner
        self.top_k = top_k
        self.mass_threshold = mass_threshold
        self.cooldown_runs = cooldown_runs
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self._workload: dict[str, RelationLoad] | None = None
        self._busy_s = 0.0
        self._runs_since_reshard = cooldown_runs  # first plan needs no wait
        self.plans: list[ReshardPlan] = []

    # ------------------------------------------------------------------

    def manages(self, engine) -> bool:
        return engine is self.engine

    def current_map(self) -> ShardMap:
        """The engine's live layout (a plain row-hash map when the
        engine was built without an explicit :class:`ShardMap`)."""
        return self.engine.shard_map or ShardMap(self.engine.shards)

    # ------------------------------------------------------------------

    def observe(self, database, result) -> None:
        """Fold one served batch's evidence: the database's relation
        sizes + hot keys, and the run's observed busy-seconds."""
        workload: dict[str, RelationLoad] = {}
        for name, column in sorted(self.planner.key_columns.items()):
            rel = database.relations.get(name)
            if rel is None or rel.full.n_rows == 0:
                continue
            if column >= rel.full.arity:
                continue
            report = hot_key_report(
                name,
                column,
                rel.enable_stats(),
                rel.full.columns[column],
                top_k=self.top_k,
                mass_threshold=self.mass_threshold,
            )
            workload[name] = RelationLoad(
                rows=float(rel.full.n_rows),
                key_column=column,
                hot_keys=report.keys,
            )
        for name, rel in database.relations.items():
            if name not in workload and rel.full.n_rows:
                workload[name] = RelationLoad(rows=float(rel.full.n_rows))
        self._workload = workload
        self._busy_s = result.service_seconds
        self._runs_since_reshard += 1

    def maybe_reshard(self, now_s: float = 0.0) -> ReshardPlan | None:
        """Price the layout against the latest observations; migrate the
        engine when (and only when) payback beats migration cost.
        Returns the priced plan, or None when there is nothing to plan
        from (no observations yet, or still in cooldown)."""
        if self._workload is None or self._busy_s <= 0.0:
            return None
        if self._runs_since_reshard < self.cooldown_runs:
            return None
        plan = self.planner.plan(
            self.current_map(), self._workload, busy_s=self._busy_s
        )
        self.plans.append(plan)
        self.metrics.counter("reshard.plans").inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "reshard.plan",
                t=now_s,
                track="reshard",
                migrate=plan.migrate,
                shards_before=plan.current_shards,
                shards_after=plan.target_shards,
                splits=plan.splits,
                payback_s=plan.payback_s,
                migration_s=plan.migration_s,
                reason=plan.reason,
            )
        if not plan.migrate:
            self.metrics.counter("reshard.declined").inc()
            return plan
        self.engine.reshard(plan.target)
        self._runs_since_reshard = 0
        # The observations that justified this layout described the old
        # one; require a fresh batch before planning again.
        self._workload = None
        self._busy_s = 0.0
        self.metrics.counter("reshard.migrations").inc()
        self.metrics.histogram("reshard.migration_s").observe(plan.migration_s)
        self.metrics.gauge("reshard.shards").set(plan.target_shards)
        self.metrics.gauge("reshard.splits").set(plan.splits)
        if tracer.enabled:
            span = tracer.start(
                "reshard.migrate",
                t=now_s,
                track="reshard",
                shards_before=plan.current_shards,
                shards_after=plan.target_shards,
                rows=plan.migration_rows,
            )
            tracer.finish(span, now_s + plan.migration_s)
        return plan

"""Recursive-descent parser for the Datalog surface language.

Grammar (items end with an optional ``.``):

    item      := type_alias | rel_decl | rule | fact_block | query
    type_alias:= "type" IDENT "=" IDENT
    rel_decl  := "type" IDENT "(" [IDENT ":" IDENT ("," ...)*] ")"
    rule      := "rel" atom (":-" | "=") formula
    fact_block:= "rel" IDENT "=" "{" tuple ("," tuple)* "}"
    query     := "query" IDENT
    formula   := conj ("or" conj)*
    conj      := unit (("," | "and") unit)*
    unit      := "(" formula ")" | ("not"|"~") atom | atom | comparison
    atom      := IDENT "(" [term ("," term)*] ")"
    term      := additive with * / % precedence, unary minus, parens
"""

from __future__ import annotations

from . import ast
from .lexer import Token, tokenize
from ..errors import ParseError

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            got = self.peek()
            want = value or kind
            raise ParseError(f"expected {want!r}, got {got.value!r}", got.line, got.column)
        return token

    # -- program ---------------------------------------------------------

    def parse_program(self) -> ast.ProgramAst:
        program = ast.ProgramAst()
        while not self.check("eof"):
            if self.check("keyword", "type"):
                self._parse_type_item(program)
            elif self.check("keyword", "rel"):
                self._parse_rel_item(program)
            elif self.check("keyword", "query"):
                self.advance()
                name = self.expect("ident").value
                program.queries.append(ast.Query(name))
            else:
                got = self.peek()
                raise ParseError(
                    f"expected 'type', 'rel', or 'query', got {got.value!r}",
                    got.line,
                    got.column,
                )
            self.accept("symbol", ".")
        return program

    def _parse_type_item(self, program: ast.ProgramAst) -> None:
        self.expect("keyword", "type")
        name = self.expect("ident").value
        if self.accept("symbol", "="):
            base = self.expect("ident").value
            program.type_aliases.append(ast.TypeAlias(name, base))
            return
        self.expect("symbol", "(")
        arg_names: list[str] = []
        arg_types: list[str] = []
        if not self.check("symbol", ")"):
            while True:
                first = self.expect("ident").value
                if self.accept("symbol", ":"):
                    arg_names.append(first)
                    arg_types.append(self.expect("ident").value)
                else:
                    arg_names.append(f"arg{len(arg_names)}")
                    arg_types.append(first)
                if not self.accept("symbol", ","):
                    break
        self.expect("symbol", ")")
        program.relation_decls.append(
            ast.RelationDecl(name, tuple(arg_names), tuple(arg_types))
        )

    def _parse_rel_item(self, program: ast.ProgramAst) -> None:
        self.expect("keyword", "rel")
        name = self.expect("ident").value
        if self.check("symbol", "=") and self.peek(1).kind == "symbol" and self.peek(1).value == "{":
            self.advance()  # =
            program.fact_blocks.append(self._parse_fact_block(name))
            return
        head = self._parse_atom_with_name(name)
        if self.accept("symbol", ":-") is None:
            self.expect("symbol", "=")
        body = self.parse_formula()
        program.rules.append(ast.Rule(head, body))

    def _parse_fact_block(self, name: str) -> ast.FactBlock:
        self.expect("symbol", "{")
        facts: list[tuple[ast.Term, ...]] = []
        if not self.check("symbol", "}"):
            while True:
                if self.accept("symbol", "("):
                    row: list[ast.Term] = []
                    if not self.check("symbol", ")"):
                        while True:
                            row.append(self.parse_term())
                            if not self.accept("symbol", ","):
                                break
                    self.expect("symbol", ")")
                    facts.append(tuple(row))
                else:
                    facts.append((self.parse_term(),))
                if not self.accept("symbol", ","):
                    break
        self.expect("symbol", "}")
        return ast.FactBlock(name, tuple(facts))

    # -- formulas ----------------------------------------------------------

    def parse_formula(self) -> ast.Formula:
        items = [self.parse_conjunction()]
        while self.accept("keyword", "or"):
            items.append(self.parse_conjunction())
        if len(items) == 1:
            return items[0]
        return ast.Disj(tuple(items))

    def parse_conjunction(self) -> ast.Formula:
        items = [self.parse_unit()]
        while True:
            if self.accept("symbol", ",") or self.accept("keyword", "and"):
                items.append(self.parse_unit())
            else:
                break
        if len(items) == 1:
            return items[0]
        return ast.Conj(tuple(items))

    def parse_unit(self) -> ast.Formula:
        if self.accept("symbol", "("):
            inner = self.parse_formula()
            self.expect("symbol", ")")
            return inner
        if self.accept("keyword", "not") or self.accept("symbol", "~"):
            token = self.peek()
            atom = self.parse_atom()
            if not isinstance(atom, ast.Atom):
                raise ParseError("negation applies to atoms only", token.line, token.column)
            return ast.Atom(atom.predicate, atom.args, negated=True)
        # Atom iff an identifier directly followed by "(".
        if self.check("ident") and self.peek(1).kind == "symbol" and self.peek(1).value == "(":
            return self.parse_atom()
        # Otherwise a comparison between two terms.
        lhs = self.parse_term()
        op_token = self.peek()
        if op_token.kind == "symbol" and op_token.value in _COMPARISON_OPS:
            self.advance()
            rhs = self.parse_term()
            return ast.Comparison(op_token.value, lhs, rhs)
        if op_token.kind == "symbol" and op_token.value == "=":
            self.advance()
            rhs = self.parse_term()
            return ast.Comparison("==", lhs, rhs)
        raise ParseError(
            f"expected comparison operator, got {op_token.value!r}",
            op_token.line,
            op_token.column,
        )

    def parse_atom(self) -> ast.Atom:
        name = self.expect("ident").value
        return self._parse_atom_with_name(name)

    def _parse_atom_with_name(self, name: str) -> ast.Atom:
        self.expect("symbol", "(")
        args: list[ast.Term] = []
        if not self.check("symbol", ")"):
            while True:
                args.append(self.parse_term())
                if not self.accept("symbol", ","):
                    break
        self.expect("symbol", ")")
        return ast.Atom(name, tuple(args))

    # -- terms -------------------------------------------------------------

    def parse_term(self) -> ast.Term:
        return self._parse_additive()

    def _parse_additive(self) -> ast.Term:
        node = self._parse_multiplicative()
        while True:
            if self.accept("symbol", "+"):
                node = ast.BinOp("+", node, self._parse_multiplicative())
            elif self.accept("symbol", "-"):
                node = ast.BinOp("-", node, self._parse_multiplicative())
            else:
                return node

    def _parse_multiplicative(self) -> ast.Term:
        node = self._parse_unary()
        while True:
            if self.accept("symbol", "*"):
                node = ast.BinOp("*", node, self._parse_unary())
            elif self.accept("symbol", "/"):
                node = ast.BinOp("/", node, self._parse_unary())
            elif self.accept("symbol", "%"):
                node = ast.BinOp("%", node, self._parse_unary())
            else:
                return node

    def _parse_unary(self) -> ast.Term:
        if self.accept("symbol", "-"):
            return ast.Neg(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Term:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return ast.IntConst(int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.FloatConst(float(token.value))
        if token.kind == "string":
            self.advance()
            return ast.StringConst(token.value)
        if token.kind == "ident":
            self.advance()
            if token.value == "_":
                return ast.Wildcard()
            return ast.Var(token.value)
        if self.accept("symbol", "("):
            inner = self.parse_term()
            self.expect("symbol", ")")
            return inner
        raise ParseError(f"expected a term, got {token.value!r}", token.line, token.column)


def parse(source: str) -> ast.ProgramAst:
    """Parse Datalog source text into a :class:`~repro.datalog.ast.ProgramAst`."""
    return Parser(source).parse_program()

"""Error hierarchy and public API surface tests."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_lobster_error(self):
        for name in (
            "ParseError",
            "ResolutionError",
            "StratificationError",
            "CompileError",
            "ExecutionError",
            "DeviceOutOfMemory",
            "EvaluationTimeout",
            "ProvenanceError",
            "RetractionUnsupportedError",
            "SessionError",
            "StaleViewError",
            "CorruptLogError",
            "CheckpointMismatchError",
            "UnknownTicketError",
            "TicketNotRunError",
            "JitUnsupportedError",
            "TraceGuardError",
        ):
            assert issubclass(getattr(errors, name), errors.LobsterError), name

    def test_oom_is_execution_error(self):
        assert issubclass(errors.DeviceOutOfMemory, errors.ExecutionError)

    def test_ticket_errors_are_session_errors(self):
        assert issubclass(errors.UnknownTicketError, errors.SessionError)
        assert issubclass(errors.TicketNotRunError, errors.SessionError)
        assert errors.UnknownTicketError(3).ticket == 3
        assert errors.TicketNotRunError(4).ticket == 4

    def test_retraction_unsupported_carries_reason(self):
        error = errors.RetractionUnsupportedError("negation in stratum 2")
        assert error.reason == "negation in stratum 2"
        assert "negation in stratum 2" in str(error)

    def test_trace_guard_is_execution_error(self):
        # A guard failure happens mid-run, like an OOM — catchable as an
        # execution failure; unsupported-construct is a compile-side
        # classification, so it stays a plain LobsterError.
        assert issubclass(errors.TraceGuardError, errors.ExecutionError)
        assert not issubclass(errors.JitUnsupportedError, errors.ExecutionError)

    def test_jit_errors_carry_reason(self):
        guard = errors.TraceGuardError("column dtype drifted: edge[0]")
        assert guard.reason == "column dtype drifted: edge[0]"
        assert "column dtype drifted: edge[0]" in str(guard)
        unsupported = errors.JitUnsupportedError("AntiProbe")
        assert unsupported.reason == "AntiProbe"
        assert "AntiProbe" in str(unsupported)

    def test_jit_errors_importable_from_top_level(self):
        assert repro.JitUnsupportedError is errors.JitUnsupportedError
        assert repro.TraceGuardError is errors.TraceGuardError

    def test_streaming_errors_importable_from_top_level(self):
        import repro

        assert repro.RetractionUnsupportedError is errors.RetractionUnsupportedError
        assert repro.StaleViewError is errors.StaleViewError

    def test_durability_errors_importable_from_top_level(self):
        import repro

        assert repro.CorruptLogError is errors.CorruptLogError
        assert repro.CheckpointMismatchError is errors.CheckpointMismatchError

    def test_durability_errors_are_not_each_other(self):
        # Torn-at-rest corruption and structural incompatibility are
        # different conditions: one falls back to older state, the other
        # must stop recovery.  Keep them catchable separately.
        assert not issubclass(errors.CorruptLogError, errors.CheckpointMismatchError)
        assert not issubclass(errors.CheckpointMismatchError, errors.CorruptLogError)

    def test_parse_error_location_prefix(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert str(error).startswith("3:7:")
        assert error.line == 3 and error.column == 7

    def test_parse_error_without_location(self):
        assert str(errors.ParseError("oops")) == "oops"

    def test_single_except_clause_catches_everything(self):
        caught = []
        for exc_type in (errors.ParseError, errors.DeviceOutOfMemory):
            try:
                raise exc_type("boom")
            except errors.LobsterError as exc:
                caught.append(exc)
        assert len(caught) == 2


class TestPublicApi:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_engine_importable_from_top_level(self):
        assert repro.LobsterEngine is not None
        assert repro.VirtualDevice is not None

"""Extra coverage: negation across engines, schedule windows, misc edges."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LobsterEngine
from repro.baselines import ScallopInterpreter, SouffleEngine
from repro.runtime.engine import OptimizationConfig

UNREACHABLE = """
rel reach(x) :- start(x) or (reach(y) and e(y, x)).
rel unreached(x) :- node(x), not reach(x).
query unreached
"""


class TestNegationEquivalence:
    def setup_facts(self):
        rng = np.random.default_rng(5)
        edges = sorted(
            {(int(a), int(b)) for a, b in rng.integers(0, 15, size=(40, 2)) if a != b}
        )
        nodes = [(n,) for n in range(15)]
        return edges, nodes

    def test_three_engines_agree_on_negation(self):
        edges, nodes = self.setup_facts()

        lobster = LobsterEngine(UNREACHABLE, provenance="unit")
        db = lobster.create_database()
        db.add_facts("start", [(0,)])
        db.add_facts("e", edges)
        db.add_facts("node", nodes)
        lobster.run(db)
        lobster_rows = set(db.result("unreached").rows())

        scallop = ScallopInterpreter(UNREACHABLE, provenance="unit")
        sdb = scallop.create_database()
        sdb.add_facts("start", [(0,)])
        sdb.add_facts("e", edges)
        sdb.add_facts("node", nodes)
        scallop.run(sdb)
        assert set(sdb.rows("unreached")) == lobster_rows

        souffle = SouffleEngine(UNREACHABLE)
        udb = souffle.create_database()
        udb.setdefault("start", set()).add((0,))
        udb.setdefault("e", set()).update(edges)
        udb.setdefault("node", set()).update(nodes)
        souffle.run(udb)
        assert udb["unreached"] == lobster_rows

    def test_negation_under_every_optimization_config(self):
        edges, nodes = self.setup_facts()
        reference = None
        for config in (OptimizationConfig(), OptimizationConfig.none()):
            engine = LobsterEngine(UNREACHABLE, provenance="unit", optimizations=config)
            db = engine.create_database()
            db.add_facts("start", [(0,)])
            db.add_facts("e", edges)
            db.add_facts("node", nodes)
            engine.run(db)
            rows = set(db.result("unreached").rows())
            if reference is None:
                reference = rows
            assert rows == reference


class TestBatchedTopK:
    def test_extension_composes_with_batching(self):
        """The top-k device extension works under batched evaluation."""
        engine = LobsterEngine(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).",
            provenance="top-k-proofs-device",
            k=2,
            proof_capacity=16,
            batched=True,
        )
        db = engine.create_database()
        engine.add_batch_facts(db, "edge", 0, [(0, 1), (1, 2)], probs=[0.9, 0.8])
        engine.add_batch_facts(
            db, "edge", 1, [(0, 2), (0, 1), (1, 2)], probs=[0.3, 0.5, 0.5]
        )
        engine.run(db)
        by_sample = engine.query_by_sample(db, "path")
        assert by_sample[0][(0, 2)] == pytest.approx(0.72)
        # Sample 1 keeps both proofs of path(0, 2): 0.3 + 0.25 - 0.075.
        assert by_sample[1][(0, 2)] == pytest.approx(0.475)


class TestStringWorkflows:
    def test_symbols_shared_between_program_and_runtime(self):
        engine = LobsterEngine(
            'rel relation = {("parent", 0, 1), ("parent", 1, 2)}\n'
            'rel grandparent(x, z) :- relation("parent", x, y), relation("parent", y, z).'
        )
        db = engine.create_database()
        engine.run(db)
        assert db.result("grandparent").rows() == [(0, 2)]

"""RNA Secondary Structure Prediction (RNA SSP, §6.1, Fig. 12).

Parses an RNA sequence according to a context-free folding grammar
(Nussinov-style: a position is unpaired, or pairs with a downstream
position enclosing and preceding sub-structures), given probabilistic
pairing scores from an upstream model.  Provenance: prob-top-1-proofs —
the parse probability of the full span is the likelihood of the best
secondary structure, and its proof *is* that structure.

Spans are encoded half-open as ``fold(i, j)`` over ``[i, j)``; ``next``
facts provide successor arithmetic.  Watson–Crick and wobble pairing
(AU/UA/CG/GC/GU/UG) is derived from per-position base facts, and a
minimum hairpin loop of 3 bases is enforced — these chemistry rules are
what pushes the program's rule count up (Table 2 lists 28 rules for the
full analysis; the core used here is the folding grammar plus the pairing
chemistry).

Instances stand in for the ArchiveII corpus: random sequences with
plausible base composition, lengths 28-175, and a pairing-score model
that prefers complementary bases at plausible distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PROGRAM = """
type base_a(i: u32)
type base_c(i: u32)
type base_g(i: u32)
type base_u(i: u32)
type next(i: u32, j: u32)
type pair_score(i: u32, j: u32)
type seq_len(n: u32)

// --- pairing chemistry: Watson-Crick + wobble ------------------------------
rel complementary(i, j) :- base_a(i), base_u(j).
rel complementary(i, j) :- base_u(i), base_a(j).
rel complementary(i, j) :- base_c(i), base_g(j).
rel complementary(i, j) :- base_g(i), base_c(j).
rel complementary(i, j) :- base_g(i), base_u(j).
rel complementary(i, j) :- base_u(i), base_g(j).

// A pairing is admissible if chemically complementary, scored by the
// model, and separated by the minimum hairpin loop.
rel pairs(i, j) :- complementary(i, j), pair_score(i, j), i + 4 <= j.

// --- folding grammar (Nussinov) ---------------------------------------------
// fold(i, j): span [i, j) has a parse.  Empty spans parse trivially.
rel fold(i, i) :- position(i).
rel position(i) :- next(i, j).
rel position(j) :- next(i, j).

// Case 1: position i unpaired (paying its unpaired score), rest folds.
rel fold(i, j) :- unpaired(i), next(i, i2), fold(i2, j), i2 <= j.
// Case 2: i pairs with k inside the span; both parts fold.
rel fold(i, j) :- pairs(i, k), next(i, i2), fold(i2, k), next(k, k2), fold(k2, j), k2 <= j.

// The whole sequence folds.
rel folded() :- fold(0, n), seq_len(n).
query folded
"""

BASES = "ACGU"
_COMPLEMENTARY = {("A", "U"), ("U", "A"), ("C", "G"), ("G", "C"), ("G", "U"), ("U", "G")}


@dataclass
class RnaInstance:
    sequence: str
    #: candidate pairings (i, j) with model scores
    pair_candidates: list[tuple[int, int]]
    pair_probs: np.ndarray
    #: per-position probability that the base is unpaired
    unpaired_probs: np.ndarray


def generate_instance(length: int, seed: int) -> RnaInstance:
    """Random sequence + pairing scores from a simulated pairing model."""
    rng = np.random.default_rng(seed)
    sequence = "".join(rng.choice(list(BASES), size=length))

    candidates: list[tuple[int, int]] = []
    probs: list[float] = []
    for i in range(length):
        for j in range(i + 4, length):
            if (sequence[i], sequence[j]) not in _COMPLEMENTARY:
                continue
            # Pairing models prefer mid-range stems; add noise.
            distance = j - i
            score = 0.85 * np.exp(-abs(distance - 12) / 40.0)
            score = float(np.clip(score + rng.normal(0, 0.05), 0.02, 0.98))
            candidates.append((i, j))
            probs.append(score)
    # Unpaired scores: the model's confidence a base is loop material;
    # paying these makes the top-1 proof prefer productive stems.
    unpaired = np.clip(rng.uniform(0.45, 0.85, size=length), 0.01, 0.99)
    return RnaInstance(sequence, candidates, np.asarray(probs), unpaired)


def populate_database(database, instance: RnaInstance):
    """Load one sequence; returns the pairing fact ids."""
    n = len(instance.sequence)
    by_base = {base: [] for base in BASES}
    for i, base in enumerate(instance.sequence):
        by_base[base].append((i,))
    for base, rows in by_base.items():
        if rows:
            database.add_facts(f"base_{base.lower()}", rows)
    database.add_facts("next", [(i, i + 1) for i in range(n)])
    database.add_facts("seq_len", [(n,)])
    database.add_facts(
        "unpaired", [(i,) for i in range(n)], probs=list(instance.unpaired_probs)
    )
    ids = database.add_facts(
        "pair_score", instance.pair_candidates, probs=list(instance.pair_probs)
    )
    return ids


def archive_lengths(n_sequences: int = 12) -> list[int]:
    """Length sweep mirroring ArchiveII's 28..175 range."""
    return list(np.linspace(28, 175, n_sequences).astype(int))

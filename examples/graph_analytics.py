"""Discrete graph analytics at scale: the FVLog-style workloads.

Runs transitive closure, same generation, and the CSPA pointer analysis
on the synthetic SNAP-like corpus, comparing Lobster against the Soufflé
baseline — the Fig. 13 experiment in miniature.

Run with:  python examples/graph_analytics.py
"""

import time

from repro import LobsterEngine
from repro.baselines import SouffleEngine
from repro.workloads.analytics import CSPA, SAME_GENERATION, TRANSITIVE_CLOSURE, cspa_instance
from repro.workloads.graphs import load_graph


def transitive_closure(graph_name: str) -> None:
    edges = load_graph(graph_name)

    engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
    database = engine.create_database()
    database.add_facts("edge", edges)
    start = time.perf_counter()
    engine.run(database)
    lobster_s = time.perf_counter() - start
    n_paths = database.result("path").n_rows

    souffle = SouffleEngine(TRANSITIVE_CLOSURE)
    sdb = souffle.create_database()
    sdb.setdefault("edge", set()).update(edges)
    start = time.perf_counter()
    souffle.run(sdb)
    souffle_s = time.perf_counter() - start

    print(
        f"TC {graph_name}: |E|={len(edges)} |closure|={n_paths}  "
        f"lobster={lobster_s:.2f}s souffle={souffle_s:.2f}s "
        f"({souffle_s / lobster_s:.1f}x)"
    )


def same_generation(graph_name: str) -> None:
    edges = load_graph(graph_name)
    engine = LobsterEngine(SAME_GENERATION, provenance="unit")
    database = engine.create_database()
    database.add_facts("parent", edges)
    start = time.perf_counter()
    engine.run(database)
    print(
        f"SameGen {graph_name}: |sg|={database.result('sg').n_rows} "
        f"in {time.perf_counter() - start:.2f}s"
    )


def pointer_analysis(subject: str) -> None:
    facts = cspa_instance(subject)
    engine = LobsterEngine(CSPA, provenance="unit")
    database = engine.create_database()
    database.add_facts("assign", facts["assign"])
    database.add_facts("dereference", facts["dereference"])
    start = time.perf_counter()
    engine.run(database)
    print(
        f"CSPA {subject}: value_flow={database.result('value_flow').n_rows} "
        f"value_alias={database.result('value_alias').n_rows} "
        f"in {time.perf_counter() - start:.2f}s"
    )


if __name__ == "__main__":
    transitive_closure("fe-sphere")
    transitive_closure("p2p-Gnu24")
    same_generation("fc_ocean")
    pointer_analysis("httpd")

"""End-to-end neurosymbolic training on the Pathfinder task (Fig. 1-3).

A patch scorer (the CNN stand-in) learns to detect dashes purely from
yes/no connectivity supervision: gradients flow from the BCE loss through
the Datalog reachability program (diff-top-1-proofs provenance) back into
the scorer's weights.

Run with:  python examples/pathfinder_training.py
"""

import numpy as np

from repro import LobsterEngine
from repro.nn import SGD, PatchScorer, Tensor
from repro.workloads import pathfinder

GRID = 5
N_TRAIN = 16
EPOCHS = 8


def main() -> None:
    rng = np.random.default_rng(0)
    scorer = PatchScorer(pathfinder.FEATURE_DIM, 16, rng)
    optimizer = SGD(scorer.parameters(), lr=0.5)
    engine = LobsterEngine(
        pathfinder.PROGRAM, provenance="diff-top-1-proofs", proof_capacity=64
    )
    train = pathfinder.make_dataset(GRID, N_TRAIN, seed=5)

    for epoch in range(EPOCHS):
        total_loss = 0.0
        correct = 0
        for instance in train:
            edge_probs = scorer(Tensor(instance.edge_features))

            database = engine.create_database()
            ids = pathfinder.populate_database(database, instance, edge_probs.data)
            engine.run(database)
            out = engine.query_probs(database, "endpoints_connected").get((), 0.0)

            target = float(instance.label)
            eps = 1e-6
            clipped = min(max(out, eps), 1 - eps)
            total_loss += -(
                target * np.log(clipped) + (1 - target) * np.log(1 - clipped)
            )
            correct += (out > 0.25) == instance.label

            grad_out = (clipped - target) / (clipped * (1 - clipped))
            grad_facts = engine.backward(
                database, "endpoints_connected", {(): grad_out}
            )
            grad_probs = np.zeros_like(edge_probs.data)
            valid = ids >= 0
            grad_probs[valid] = grad_facts[ids[valid]]

            optimizer.zero_grad()
            edge_probs.backward(grad_probs)
            optimizer.step()

        print(
            f"epoch {epoch}: loss={total_loss / len(train):.3f} "
            f"train accuracy={correct / len(train):.2%}"
        )


if __name__ == "__main__":
    main()

"""Statistical benchmark observability (this repo's measurement layer).

``perf/`` is what makes the repo's speedup claims checkable: every
benchmark reports multi-trial statistics with confidence intervals
(:mod:`repro.perf.stats`), results land in schema-versioned
machine-readable ``BENCH_*.json`` records next to the markdown summaries
(:mod:`repro.perf.record`), fresh runs are gated against the previous
committed baseline with CI-adjusted slowdown ratios
(:mod:`repro.perf.regress`), and a workload-characterization report
(:mod:`repro.perf.characterize`) plus a cross-suite baseline comparison
(:mod:`repro.perf.crosssuite`) show that the suite covers the workload
space it claims to.  Measurement discipline follows SPEC CPU2026
(PAPERS.md): warmups, t-distribution intervals, geometric means.
"""

from .record import (
    SCHEMA_VERSION,
    BenchmarkResult,
    SuiteRecord,
    environment_fingerprint,
    load_record,
    record_path,
    validate_record,
    write_record,
)
from .regress import GateReport, Verdict, check_record, check_records
from .stats import (
    Ratio,
    TrialStats,
    geomean_ratio,
    ratio_of,
    summarize,
    t_quantile,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchmarkResult",
    "GateReport",
    "Ratio",
    "SuiteRecord",
    "TrialStats",
    "Verdict",
    "check_record",
    "check_records",
    "environment_fingerprint",
    "geomean_ratio",
    "load_record",
    "ratio_of",
    "record_path",
    "summarize",
    "t_quantile",
    "validate_record",
    "write_record",
]

"""The CLUTRR task (§6.1): deduce kinship through composition chains.

Each sample is a passage about a family; a relation extractor produces a
distribution over kinship relations per sentence (here: per edge of a
family chain), and the Datalog program recursively applies composition
rules to infer the relation between the query pair — chains up to length
10, matching the paper's hardest split.

The kinship algebra is generated from (generation offset, gender)
semantics: ``rel(x, y)`` states "y is x's <rel>"; composing hops sums
generation offsets and takes the terminal gender.  This yields a sound
composition table over ten relations spanning grandparents to
grandchildren, in the spirit of the CLUTRR benchmark's clean logic.

The 3 rules match Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PROGRAM = """
type kinship(r: u32, x: u32, y: u32)
type composition(r1: u32, r2: u32, r3: u32)

rel derived(r, x, y) :- kinship(r, x, y).
rel derived(r3, x, z) :- derived(r1, x, y), kinship(r2, y, z), composition(r1, r2, r3).
rel answer(r) :- derived(r, x, y), query_pair(x, y).
query answer
"""

#: Relation vocabulary: (name, generation offset, gender of the target).
RELATIONS = [
    ("grandfather", 2, "m"),
    ("grandmother", 2, "f"),
    ("father", 1, "m"),
    ("mother", 1, "f"),
    ("brother", 0, "m"),
    ("sister", 0, "f"),
    ("son", -1, "m"),
    ("daughter", -1, "f"),
    ("grandson", -2, "m"),
    ("granddaughter", -2, "f"),
]

NAME_TO_ID = {name: index for index, (name, _, _) in enumerate(RELATIONS)}


def composition_table() -> list[tuple[int, int, int]]:
    """All valid (r1, r2, r3) compositions under offset+gender semantics."""
    table: list[tuple[int, int, int]] = []
    for id1, (_, offset1, _) in enumerate(RELATIONS):
        for id2, (_, offset2, gender2) in enumerate(RELATIONS):
            offset = offset1 + offset2
            if not -2 <= offset <= 2:
                continue
            for id3, (_, offset3, gender3) in enumerate(RELATIONS):
                if offset3 == offset and gender3 == gender2:
                    table.append((id1, id2, id3))
    return table


@dataclass
class KinshipInstance:
    chain_relations: list[int]  # relation id per hop (person i -> i+1)
    target_relation: int  # composed relation of (0, len)
    #: (hops, |RELATIONS|) noisy extractor output
    relation_probs: np.ndarray


def compose_chain(relations: list[int]) -> int | None:
    offset = 0
    gender = None
    for relation in relations:
        _, hop_offset, hop_gender = RELATIONS[relation]
        offset += hop_offset
        gender = hop_gender
        if not -2 <= offset <= 2:
            return None
    for index, (_, o, g) in enumerate(RELATIONS):
        if o == offset and g == gender:
            return index
    return None


def generate_instance(chain_length: int, seed: int, noise: float = 0.1) -> KinshipInstance:
    """A random composable chain with noisy extractor scores."""
    rng = np.random.default_rng(seed)
    while True:
        chain = [int(rng.integers(0, len(RELATIONS))) for _ in range(chain_length)]
        target = compose_chain(chain)
        if target is not None:
            break

    probs = np.full((chain_length, len(RELATIONS)), noise / len(RELATIONS))
    for hop, relation in enumerate(chain):
        probs[hop, relation] += 1.0 - noise
    probs /= probs.sum(axis=1, keepdims=True)
    return KinshipInstance(chain, target, probs)


def populate_database(database, instance: KinshipInstance, beam: int = 3):
    """Load one passage; per-hop candidates are mutually exclusive."""
    n_hops = len(instance.chain_relations)
    database.add_facts("composition", composition_table())
    database.add_facts("query_pair", [(0, n_hops)])

    all_ids: list[int] = []
    hops: list[int] = []
    candidates_out: list[int] = []
    for hop in range(n_hops):
        probs = instance.relation_probs[hop]
        candidates = np.argsort(probs)[::-1][:beam]
        rows = [(int(r), hop, hop + 1) for r in candidates]
        ids = database.add_facts(
            "kinship",
            rows,
            probs=[float(probs[r]) for r in candidates],
            exclusive=True,
        )
        all_ids.extend(int(i) for i in ids)
        hops.extend([hop] * len(candidates))
        candidates_out.extend(int(r) for r in candidates)
    return np.array(all_ids), np.array(hops), np.array(candidates_out)


def predicted_relation(prob_by_row: dict[tuple, float]) -> int | None:
    if not prob_by_row:
        return None
    best = max(prob_by_row.items(), key=lambda item: item[1])
    return int(best[0][0])


def make_dataset(chain_length: int, n_samples: int, seed: int = 0):
    return [generate_instance(chain_length, seed * 4093 + i) for i in range(n_samples)]

#!/usr/bin/env python3
"""Run every ``bench_*`` file with multi-trial statistics, emit
machine-readable ``BENCH_<suite>.json`` records plus a timestamped
markdown summary, and gate the run against a committed baseline.

Each benchmark file is a pytest module; ``--trials``/``--warmups`` are
exported as ``LOBSTER_BENCH_TRIALS``/``LOBSTER_BENCH_WARMUPS`` so the
shared harness (:func:`benchmarks._harness.timed`) runs every measured
cell that many times and reports mean ± stddev with a 95% t-interval.
Each pytest process drops its per-suite record into a private fragments
directory (``LOBSTER_BENCH_FRAGMENTS``); this driver collects them,
writes the canonical copies into ``benchmarks/results/``, renders the
summary (per-benchmark statistics, workload characterization, cross-
suite baseline comparison), and runs the CI-adjusted regression gate
against ``benchmarks/baselines/<mode>/`` (see ``--baseline``).

Artifact naming (also documented in ``results/README.md``):

* ``BENCH_<suite>.json`` — stable name, one per suite, overwritten each
  run so a committed copy diffs cleanly against the next run;
* ``summary-<YYYYmmdd-HHMMSS>.md`` — append-only history, pruned to the
  newest ``--keep`` files;
* ``tables.txt`` — per-run scratch (paper-shaped console tables),
  truncated at the start of every sweep and never version-tracked.

Usage::

    python benchmarks/run_all.py                     # 1 trial, no warmup
    python benchmarks/run_all.py --trials 5 --warmups 1
    python benchmarks/run_all.py --tiny --trials 2   # CI smoke sizes
    python benchmarks/run_all.py --filter scaleout   # only matching files
"""

from __future__ import annotations

import argparse
import datetime
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.record import (  # noqa: E402
    SuiteRecord,
    environment_fingerprint,
    load_record,
    record_path,
    write_record,
)
from repro.perf.regress import DEFAULT_THRESHOLD, check_records  # noqa: E402

TINY_FLAGS = (
    "LOBSTER_SCALEOUT_TINY",
    "LOBSTER_SERVE_TINY",
    "LOBSTER_STREAM_TINY",
    "LOBSTER_PLANNER_TINY",
    "LOBSTER_RECOVERY_TINY",
    "LOBSTER_JIT_TINY",
    "LOBSTER_OBS_TINY",
    "LOBSTER_RESHARD_TINY",
)


def read_version() -> str:
    # Same anchored parse as setup.py, so the two can never disagree on
    # what counts as the version line.
    import re

    init = REPO_ROOT / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__\s*=\s*"([^"]+)"', init.read_text(), re.M)
    return match.group(1) if match else "unknown"


def bench_files(pattern: str | None) -> list[Path]:
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if pattern:
        files = [path for path in files if pattern in path.name]
    return files


def prune_summaries(keep: int) -> list[Path]:
    """Keep the newest ``keep`` ``summary-*.md`` files (timestamped names
    sort chronologically); delete the rest.  Returns what was removed."""
    summaries = sorted(RESULTS_DIR.glob("summary-*.md"))
    doomed = summaries[:-keep] if keep > 0 else []
    for path in doomed:
        path.unlink()
    return doomed


def run_once(path: Path, env: dict) -> tuple[float, bool]:
    """One timed pytest run of a benchmark file; returns (seconds, ok).
    Failure output is surfaced so a FAIL row is diagnosable."""
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(path),
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(f"--- {path.name} failed (exit {proc.returncode}) ---", file=sys.stderr)
        print(proc.stdout[-4000:], file=sys.stderr)
        print(proc.stderr[-2000:], file=sys.stderr)
    return time.perf_counter() - start, proc.returncode == 0


def collect_fragments(fragments_dir: Path) -> dict[str, SuiteRecord]:
    """Load every per-suite record the bench processes dropped."""
    records = {}
    for path in sorted(fragments_dir.glob("BENCH_*.json")):
        record = load_record(path)
        records[record.suite] = record
    return records


def stats_rows(records: dict[str, SuiteRecord]) -> list[str]:
    """Per-benchmark statistics as markdown table lines."""
    lines = [
        "| suite | benchmark | unit | status | n | mean | stddev | 95% CI |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for suite in sorted(records):
        for bench in records[suite].benchmarks:
            if bench.ok and bench.samples:
                stats = bench.stats()
                mean = f"{stats.mean:.6g}"
                stddev = f"{stats.stddev:.6g}"
                ci = f"±{stats.ci:.6g}" if stats.n > 1 else "n/a"
                n = str(stats.n)
            else:
                mean = stddev = ci = "-"
                n = "0"
            lines.append(
                f"| {suite} | {bench.name} | {bench.unit} | {bench.status}"
                f" | {n} | {mean} | {stddev} | {ci} |"
            )
    return lines


def load_baseline(path: Path) -> dict[str, SuiteRecord]:
    if not path.is_dir():
        return {}
    records = {}
    for candidate in sorted(path.glob("BENCH_*.json")):
        record = load_record(candidate)
        records[record.suite] = record
    return records


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=1, help="timed runs per cell")
    parser.add_argument("--warmups", type=int, default=0, help="untimed runs first")
    parser.add_argument("--filter", default=None, help="substring filter on file names")
    parser.add_argument(
        "--tiny", action="store_true",
        help=f"set {', '.join(TINY_FLAGS)} (CI smoke sizes)",
    )
    parser.add_argument(
        "--keep", type=int, default=10, metavar="N",
        help="retain only the newest N summary-*.md files (default 10)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="DIR",
        help="baseline record dir for the regression gate "
        "(default benchmarks/baselines/<tiny|full> when it exists)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="CI-adjusted slowdown that counts as a regression",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="skip the regression gate even if a baseline exists",
    )
    parser.add_argument(
        "--no-characterize", action="store_true",
        help="skip the workload characterization pass",
    )
    parser.add_argument(
        "--no-crosssuite", action="store_true",
        help="skip the cross-suite baseline-engine comparison",
    )
    args = parser.parse_args()

    files = bench_files(args.filter)
    if not files:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    RESULTS_DIR.mkdir(exist_ok=True)
    # tables.txt is per-run scratch: truncate, never accumulate.
    (RESULTS_DIR / "tables.txt").write_text("")
    pruned = prune_summaries(args.keep)
    for path in pruned:
        print(f"pruned {path.name}")

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["LOBSTER_BENCH_TRIALS"] = str(max(args.trials, 1))
    env["LOBSTER_BENCH_WARMUPS"] = str(max(args.warmups, 0))
    if args.tiny:
        for flag in TINY_FLAGS:
            env[flag] = "1"

    rows: list[tuple[str, str, float]] = []
    all_ok = True
    with tempfile.TemporaryDirectory(prefix="lobster-bench-frag-") as fragments:
        env["LOBSTER_BENCH_FRAGMENTS"] = fragments
        for path in files:
            print(
                f"== {path.name} ({args.warmups} warmup(s), "
                f"{args.trials} trial(s) per cell)"
            )
            seconds, ok = run_once(path, env)
            all_ok = all_ok and ok
            status = "ok" if ok else "FAIL"
            rows.append((path.name, status, seconds))
            print(f"   {status}: {seconds:.2f}s")
        records = collect_fragments(Path(fragments))

    characterization_md: list[str] = []
    if not args.no_characterize:
        print("== workload characterization")
        from repro.perf import characterize

        characters = characterize.characterize_workloads()
        characterization_md = characterize.render_markdown(characters)
        records["characterization"] = SuiteRecord(
            suite="characterization",
            created=datetime.datetime.now().isoformat(timespec="seconds"),
            environment=environment_fingerprint(read_version()),
            characterization=[c.to_dict() for c in characters],
        )

    crosssuite_md: list[str] = []
    if not args.no_crosssuite:
        print("== cross-suite baseline comparison")
        from repro.perf import crosssuite

        cells = crosssuite.compare_baselines(
            trials=max(args.trials, 1), warmups=args.warmups, tiny=args.tiny
        )
        crosssuite_md = crosssuite.render_markdown(cells)
        cross_record = SuiteRecord(
            suite="crosssuite",
            created=datetime.datetime.now().isoformat(timespec="seconds"),
            environment=environment_fingerprint(read_version()),
        )
        for result in crosssuite.to_benchmark_results(cells):
            cross_record.add(result)
        records["crosssuite"] = cross_record

    for suite, record in records.items():
        write_record(record, record_path(RESULTS_DIR, suite))
    print(f"wrote {len(records)} BENCH_*.json record(s) to {RESULTS_DIR}")

    # Regression gate: compare against the committed baseline records.
    gate_md: list[str] = []
    gate_ok = True
    baseline_dir = args.baseline
    if baseline_dir is None:
        baseline_dir = BASELINES_DIR / ("tiny" if args.tiny else "full")
    baselines = {} if args.no_gate else load_baseline(baseline_dir)
    if baselines:
        reports = check_records(baselines, records, threshold=args.threshold)
        for report in reports:
            print(report.render())
            gate_ok = gate_ok and report.passed
        gate_md = ["```"] + [
            line for report in reports for line in report.render().splitlines()
        ] + ["```"]
    elif not args.no_gate:
        gate_md = [f"No baseline records under `{baseline_dir}` — gate skipped."]
        print(gate_md[0])

    stamp = datetime.datetime.now()
    out = RESULTS_DIR / f"summary-{stamp:%Y%m%d-%H%M%S}.md"
    lines = [
        f"# Benchmark summary — {stamp:%Y-%m-%d %H:%M:%S}",
        "",
        f"- lobster-repro version: `{read_version()}`",
        f"- Python: `{platform.python_version()}` on `{platform.platform()}`",
        f"- trials per cell: {args.trials} (warmups: {args.warmups})",
        f"- mode: {'tiny (smoke sizes)' if args.tiny else 'full'}",
        "",
        "## Per-file wall time",
        "",
        "| benchmark file | status | wall time |",
        "|---|---|---|",
    ]
    for name, status, seconds in rows:
        lines.append(f"| `{name}` | {status} | {seconds:.2f}s |")
    lines += [
        "",
        "## Per-benchmark statistics",
        "",
        "Mean ± stddev over the trial samples; the 95% interval is a",
        "t-distribution half-width (`repro.perf.stats`).  Units: `s` is",
        "host wall clock, `modeled_s` the simulator's deterministic device",
        "clock, `fraction` a unitless quality score.",
        "",
        *stats_rows(records),
    ]
    if characterization_md:
        lines += ["", "## Workload characterization", ""] + characterization_md
    if crosssuite_md:
        lines += ["", "## Cross-suite baseline comparison", ""] + crosssuite_md
    if gate_md:
        lines += ["", "## Regression gate", ""] + gate_md
    lines.append("")
    out.write_text("\n".join(lines) + "\n")
    print(f"\nwrote {out}")

    if not gate_ok:
        print("regression gate FAILED", file=sys.stderr)
    return 0 if (all_ok and gate_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())

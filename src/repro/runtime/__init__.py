"""Runtime: columnar tables, stored relations, databases, engine facade."""

from .batching import SAMPLE_VAR, batch_transform, prepend_sample
from .database import Database
from .engine import ExecutionResult, LobsterEngine, OptimizationConfig
from .relation import StoredRelation
from .table import Table

__all__ = [
    "Database",
    "ExecutionResult",
    "LobsterEngine",
    "OptimizationConfig",
    "SAMPLE_VAR",
    "StoredRelation",
    "Table",
    "batch_transform",
    "prepend_sample",
]

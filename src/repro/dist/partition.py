"""Hash partitioning of relations across a shard pool.

Every tuple has exactly one *owner* shard, determined by a splitmix-style
hash of its value columns (tags never participate: two runs of the same
program must partition identically regardless of provenance).  The
sharded executor uses ownership two ways:

* the semi-naive **frontier** is genuinely partitioned — each shard seeds
  its ``recent`` mask with only the rows it owns, so the probe side of
  every recursive join shrinks ~1/N per shard;
* delta **merging** happens at the owner — the exchange operator routes
  every derived row to the shard owning it, where duplicate derivations
  (possibly produced on different shards) are ⊕-combined exactly once.

The hash is deterministic across processes and platforms: integer
columns are mixed via their 64-bit two's-complement pattern, float
columns via their IEEE-754 bits (with ``-0.0`` canonicalized to ``0.0``
so value-equal rows always share an owner).
"""

from __future__ import annotations

import numpy as np

from ..runtime.table import Table

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_FNV_PRIME = np.uint64(0x100000001B3)


def _mix64(bits: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer."""
    with np.errstate(over="ignore"):
        z = bits + _SPLITMIX_GAMMA
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def hash_rows(columns: list[np.ndarray], n_rows: int) -> np.ndarray:
    """Deterministic 64-bit hash per row of a columnar table."""
    acc = np.full(n_rows, _SPLITMIX_GAMMA, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for column in columns:
            if column.dtype.kind == "f":
                values = column.astype(np.float64)
                # -0.0 == 0.0 must hash identically.
                values = values + 0.0
                bits = values.view(np.uint64)
            else:
                bits = column.astype(np.int64).view(np.uint64)
            acc = acc * _FNV_PRIME + _mix64(bits)
    return _mix64(acc)


class HashPartitioner:
    """Assigns each row of a relation to one of ``n_shards`` owners."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    def owners(self, table: Table) -> np.ndarray:
        """Owner shard id per row.  Arity-0 relations (at most one
        logical row) are pinned to shard 0."""
        if table.arity == 0:
            return np.zeros(table.n_rows, dtype=np.int64)
        hashes = hash_rows(table.columns, table.n_rows)
        return (hashes % np.uint64(self.n_shards)).astype(np.int64)

    def owner_mask(self, table: Table, shard: int) -> np.ndarray:
        return self.owners(table) == shard

    def split(self, table: Table) -> list[Table]:
        """Partition a table into per-owner sub-tables (shard order)."""
        owners = self.owners(table)
        return [
            table.take(np.flatnonzero(owners == shard))
            for shard in range(self.n_shards)
        ]

"""Batched evaluation (§4.3): solve a batch of PacMan mazes in one run.

One engine invocation processes every maze simultaneously — facts carry a
sample id, so derivations from different mazes can never mix, and the
per-sample results are disaggregated afterwards.

Run with:  python examples/batched_maze_solving.py
"""

import time

from repro import LobsterEngine
from repro.workloads import pacman

BATCH = 6
GRID = 7


def main() -> None:
    engine = LobsterEngine(
        pacman.PROGRAM,
        provenance="diff-top-1-proofs",
        proof_capacity=256,
        batched=True,
    )
    database = engine.create_database()

    instances = pacman.make_dataset(GRID, BATCH, seed=42)
    for sample_id, instance in enumerate(instances):
        probs = pacman.pretrained_safety_probs(instance, seed=sample_id)
        cells = [(c,) for c in range(GRID * GRID)]
        engine.add_batch_facts(database, "safe", sample_id, cells, probs=list(probs))
        engine.add_batch_facts(database, "adjacent", sample_id, instance.adjacency)
        engine.add_batch_facts(database, "actor", sample_id, [(instance.actor,)])
        engine.add_batch_facts(database, "goal", sample_id, [(instance.goal,)])

    start = time.perf_counter()
    engine.run(database)
    elapsed = time.perf_counter() - start

    moves_by_sample = engine.query_by_sample(database, "good_move")
    print(f"solved {BATCH} mazes in one batched run ({elapsed:.2f}s)\n")
    for sample_id, instance in enumerate(instances):
        predicted = {
            move[0] for move, p in moves_by_sample.get(sample_id, {}).items() if p > 0.5
        }
        verdict = "OK" if predicted == instance.optimal_first_moves else "differs"
        print(
            f"maze {sample_id}: good first moves {sorted(predicted)} "
            f"(BFS ground truth {sorted(instance.optimal_first_moves)}) {verdict}"
        )


if __name__ == "__main__":
    main()

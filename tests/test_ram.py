"""RAM lowering, planner, and expression backend tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import compile_source
from repro.gpu import bytecode
from repro.ram import compile_program, exprs, ir
from repro.ram.planner import order_atoms
from repro.datalog import ast


class TestExprBackends:
    """The bytecode (device) and per-row (CPU) backends must agree."""

    exprs_strategy = st.deferred(
        lambda: st.one_of(
            st.builds(exprs.Col, st.integers(0, 1)),
            st.builds(exprs.Const, st.integers(-20, 20)),
            st.builds(
                exprs.Binary,
                st.sampled_from(["+", "-", "*", "min", "max"]),
                TestExprBackends.exprs_strategy,
                TestExprBackends.exprs_strategy,
            ),
            st.builds(
                exprs.Unary, st.just("neg"), TestExprBackends.exprs_strategy
            ),
        )
    )

    @given(exprs_strategy, st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_bytecode_matches_row_evaluation(self, expr, rows):
        dtypes = (np.dtype(np.int64), np.dtype(np.int64))
        program = exprs.to_bytecode(expr, dtypes)
        cols = [
            np.array([r[0] for r in rows], dtype=np.int64),
            np.array([r[1] for r in rows], dtype=np.int64),
        ]
        vectorized = bytecode.execute(program, cols, len(rows))
        for index, row in enumerate(rows):
            assert vectorized[index] == exprs.evaluate_row(expr, row)

    def test_division_promotes_to_float(self):
        expr = exprs.Binary("/", exprs.Col(0), exprs.Const(2))
        assert exprs.expr_dtype(expr, (np.dtype(np.int64),)) == np.dtype(np.float64)
        program = exprs.to_bytecode(expr, (np.dtype(np.int64),))
        out = bytecode.execute(program, [np.array([3])], 1)
        assert out[0] == pytest.approx(1.5)

    def test_comparison_dtype_is_int(self):
        expr = exprs.Binary("<", exprs.Col(0), exprs.Const(5))
        assert exprs.expr_dtype(expr, (np.dtype(np.int64),)) == np.dtype(np.int64)

    def test_is_permutation(self):
        assert exprs.is_permutation([exprs.Col(1), exprs.Col(0)])
        assert not exprs.is_permutation([exprs.Col(0), exprs.Const(1)])

    def test_max_stack_depth(self):
        expr = exprs.Binary(
            "+", exprs.Col(0), exprs.Binary("*", exprs.Col(1), exprs.Const(2))
        )
        program = exprs.to_bytecode(expr, (np.dtype(np.int64),) * 2)
        assert program.max_stack_depth() == 3


class TestPlanner:
    def test_order_atoms_prefers_shared_variables(self):
        a = ast.Atom("a", (ast.Var("x"),))
        b = ast.Atom("b", (ast.Var("y"), ast.Var("z")))
        c = ast.Atom("c", (ast.Var("x"), ast.Var("y")))
        ordered = order_atoms([a, b, c])
        # After a(x), atom c shares x; b shares nothing yet.
        assert [atom.predicate for atom in ordered] == ["a", "c", "b"]

    def test_single_atom(self):
        a = ast.Atom("a", (ast.Var("x"),))
        assert order_atoms([a]) == [a]


class TestDatalogLowering:
    def lower(self, source: str) -> ir.RamProgram:
        return compile_program(compile_source(source))

    def test_tc_structure(self):
        ram = self.lower(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."
        )
        assert len(ram.strata) == 1
        stratum = ram.strata[0]
        assert stratum.recursive
        assert len(stratum.rules) == 2
        base, recursive = stratum.rules
        assert base.recursive_atoms == ()
        assert len(recursive.recursive_atoms) == 1

    def test_join_width(self):
        ram = self.lower("rel r(x, z) :- a(x, y), b(y, z).")
        rule = ram.strata[0].rules[0]
        joins = [
            node
            for node in _walk(rule.expr)
            if isinstance(node, ir.Join)
        ]
        assert len(joins) == 1 and joins[0].width == 1

    def test_product_when_no_shared_vars(self):
        ram = self.lower("rel r(x, y) :- a(x), b(y).")
        rule = ram.strata[0].rules[0]
        assert any(isinstance(node, ir.Product) for node in _walk(rule.expr))

    def test_antijoin_for_negation(self):
        ram = self.lower("rel r(x) :- a(x), not b(x).")
        rule = ram.strata[0].rules[0]
        antijoins = [n for n in _walk(rule.expr) if isinstance(n, ir.Antijoin)]
        assert len(antijoins) == 1 and antijoins[0].width == 1

    def test_selection_pushed_below_join(self):
        ram = self.lower("rel r(x, z) :- a(x, y), x < 3, b(y, z).")
        rule = ram.strata[0].rules[0]
        nodes = _walk(rule.expr)
        select_depth = min(
            depth for depth, n in _walk_depth(rule.expr) if isinstance(n, ir.Select)
        )
        join_depth = min(
            depth for depth, n in _walk_depth(rule.expr) if isinstance(n, ir.Join)
        )
        assert select_depth > join_depth  # deeper = closer to the scan

    def test_output_dtypes(self):
        ram = self.lower("rel r(x / y) :- a(x, y).")
        rule = ram.strata[0].rules[0]
        assert ir.output_dtypes(rule.expr, ram.schemas) == (np.dtype(np.float64),)

    def test_replace_scan_partition(self):
        ram = self.lower(
            "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."
        )
        recursive = ram.strata[0].rules[1]
        rewritten = ir.replace_scan_partition(
            recursive.expr, recursive.recursive_atoms[0], "recent"
        )
        partitions = [scan.partition for scan in ir.scans_of(rewritten)]
        assert partitions.count("recent") == 1

    def test_rule_without_positive_atoms_rejected(self):
        from repro.errors import CompileError

        resolved = compile_source("rel r(x) :- a(x).")
        resolved.rules[0].positives.clear()
        with pytest.raises(CompileError, match="no positive"):
            compile_program(resolved)


def _walk(expr):
    out = [expr]
    for attr in ("source", "left", "right"):
        child = getattr(expr, attr, None)
        if child is not None:
            out.extend(_walk(child))
    if isinstance(expr, ir.Union):
        for item in expr.items:
            out.extend(_walk(item))
    return out


def _walk_depth(expr, depth=0):
    out = [(depth, expr)]
    for attr in ("source", "left", "right"):
        child = getattr(expr, attr, None)
        if child is not None:
            out.extend(_walk_depth(child, depth + 1))
    return out

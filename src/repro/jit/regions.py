"""Region selection: cut a recorded variant into fusible segments.

A rule variant is a straight-line APM instruction list (SSA registers, no
control flow), which makes it the ideal JIT region — the same property
dynamic binary instrumentation frameworks exploit when they translate
basic blocks once and re-enter the code cache.  The selector walks the
instruction list and groups it into *regions*, each of which the fusion
compiler (:mod:`repro.jit.fuse`) lowers to at most one fused kernel:

* ``load`` — consecutive ``Load`` instructions.  Snapshot references, no
  kernel (the interpreter charges nothing for them either).
* ``index`` — one ``Build``.  Hash-index construction; charged through
  the allocation model (bytes), participates in the §4.2 static-index
  reuse exactly like the interpreted path.
* ``join`` / ``cross`` — a ``Probe``/``CrossIndices`` plus every fusible
  instruction after it up to the next eager instruction.  One fused
  kernel: the probe's match enumeration streams through the pipelined
  gathers, filters, projections, and the final store epilogue without
  materializing intermediates.
* ``pipeline`` — fusible instructions with no preceding join in the
  variant (a flat copy/filter rule).  One fused evaluate-and-store
  kernel.

Boundaries the selector refuses to cross — the interpreter fallback set:

* stratified negation (``AntiProbe``, ``PassIfEmpty``): the anti-join's
  absence semantics have no streaming translation here, and negation is
  only sound against complete relations;
* stratum boundaries never arise inside a region by construction — a
  variant belongs to exactly one stratum;
* non-idempotent ⊕ is rejected one level up (:func:`repro.jit.trace
  .compile_trace`): a fused ⊕-merge reassociates tag combination, which
  only order-insensitive semirings survive bitwise.

Raises :class:`~repro.errors.JitUnsupportedError` for unsupported
instructions; callers treat that as "this variant stays interpreted".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apm import instructions as I
from ..apm.compiler import Variant
from ..errors import JitUnsupportedError

__all__ = ["Region", "select_regions", "fused_kernel_count"]


@dataclass
class Region:
    """One straight-line fusible segment of a variant."""

    kind: str  # "load" | "index" | "join" | "cross" | "pipeline"
    instructions: list = field(default_factory=list)

    @property
    def charged(self) -> bool:
        """Whether this region executes as one charged fused kernel."""
        return self.kind in ("join", "cross", "pipeline")


def select_regions(variant: Variant) -> list[Region]:
    """Cut ``variant`` into fused regions, in instruction order."""
    regions: list[Region] = []

    def begin(kind: str, instruction) -> None:
        regions.append(Region(kind, [instruction]))

    for instruction in variant.instructions:
        if isinstance(instruction, I.JIT_UNSUPPORTED):
            raise JitUnsupportedError(
                f"{type(instruction).__name__} (stratified negation) has "
                "no fused translation; the variant stays interpreted"
            )
        if isinstance(instruction, I.Load):
            if regions and regions[-1].kind == "load":
                regions[-1].instructions.append(instruction)
            else:
                begin("load", instruction)
        elif isinstance(instruction, I.Build):
            begin("index", instruction)
        elif isinstance(instruction, I.Probe):
            begin("join", instruction)
        elif isinstance(instruction, I.CrossIndices):
            begin("cross", instruction)
        elif isinstance(instruction, I.FUSIBLE):
            if regions and regions[-1].charged:
                regions[-1].instructions.append(instruction)
            else:
                begin("pipeline", instruction)
        else:
            raise JitUnsupportedError(
                f"unknown APM instruction {type(instruction).__name__}"
            )
    return regions


def fused_kernel_count(regions: list[Region]) -> int:
    """Fused kernels this variant executes per run: one per join/cross
    region; a join-free variant collapses to one evaluate-and-store
    kernel (its ``pipeline`` regions share the store epilogue)."""
    joins = sum(1 for region in regions if region.kind in ("join", "cross"))
    if joins:
        return joins
    return 1 if any(region.kind == "pipeline" for region in regions) else 0

"""The compile-once program cache.

``LobsterEngine`` historically re-parsed, re-lowered, and re-optimized its
Datalog source on every construction.  For a serving workload — many
engines over the same program, or one benchmark constructing an engine per
sample — that front-end cost dominates; the SPEC CPU2026 methodology of
separating one-time compilation from steady-state throughput demands the
two be measurable independently.

This module provides that separation:

* :func:`compile_source` runs the full front-end pipeline
  (parse -> resolve -> RAM -> APM -> optimize) once and returns an
  immutable :class:`CompiledProgram` artifact;
* :class:`ProgramCache` is a content-addressed, thread-safe LRU cache of
  those artifacts, keyed by the *normalized* Datalog source, the
  provenance name, the :class:`OptimizationConfig`, and the batched flag;
* a process-wide default cache (:func:`default_cache`) makes every engine
  construction a warm path after the first.

Compiled artifacts are safe to share: nothing in the pipeline's output is
mutated at run time (the optimizer runs inside :func:`compile_source`, and
databases receive copies of the schema map).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..apm.compiler import ApmProgram, compile_ram
from ..apm.optimizer import optimize
from ..datalog.parser import parse
from ..datalog.resolver import ResolvedProgram, _resolve_fact_blocks, resolve
from ..interning import SymbolTable
from ..ram.compile_datalog import compile_program
from ..ram.ir import RamProgram
from ..stats.estimate import CostModel
from ..stats.relation_stats import StatsCatalog
from .batching import batch_transform

#: Bump when the compiled artifact's layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1


@dataclass
class OptimizationConfig:
    """Toggles for the paper's optimizations (the Fig. 10 ablation arms).

    ``apm_passes`` changes the compiled program (it gates the APM-level
    DCE/fusion passes); the other three are runtime toggles.  All four are
    part of the program-cache key so an ablation arm never sees another
    arm's artifact.
    """

    buffer_reuse: bool = True
    static_indices: bool = True
    stratum_scheduling: bool = True
    apm_passes: bool = True
    #: Whether a supplied :class:`~repro.stats.StatsCatalog` may drive
    #: atom ordering (this repo's cost-based planner).  With no catalog
    #: the planner always falls back to the syntactic heuristic, so the
    #: flag only matters for adaptive engines and explicit stats
    #: compiles — but it is part of the cache key like every other arm.
    cost_based: bool = True

    @classmethod
    def none(cls) -> "OptimizationConfig":
        return cls(False, False, False, False, False)

    def key_fields(self) -> tuple[bool, ...]:
        return (
            self.buffer_reuse,
            self.static_indices,
            self.stratum_scheduling,
            self.apm_passes,
            self.cost_based,
        )


@dataclass
class CompiledProgram:
    """The immutable output of the compilation pipeline, shareable across
    engines, databases, and runs."""

    #: Content-addressed cache key (hex digest).
    key: str
    resolved: ResolvedProgram
    ram: RamProgram
    apm: ApmProgram
    #: Inline fact blocks of a batched program, replicated per sample at
    #: load time (empty for non-batched programs).
    batch_fact_rows: dict[str, list[tuple]]
    #: One-time front-end cost of producing this artifact.
    compile_seconds: float
    #: Bucket key of the statistics catalog this artifact was planned
    #: under; None for the zero-statistics (syntactic heuristic) plan.
    stats_bucket: str | None = None
    #: Planner cardinality estimates per rule (``s<i>r<j>`` keys, the
    #: interpreter's feedback keys); empty for heuristic plans.
    rule_estimates: dict[str, float] = field(default_factory=dict)


def normalize_source(source: str) -> str:
    """Canonicalize Datalog source for content addressing.

    Strips per-line leading/trailing whitespace, blank lines, and
    whole-line ``//`` comments.  Intentionally conservative: whitespace
    *inside* a line is preserved so string literals can never make two
    distinct programs collide.
    """
    lines = []
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        lines.append(stripped)
    return "\n".join(lines)


def cache_key(
    source: str,
    provenance_name: str,
    optimizations: OptimizationConfig,
    batched: bool,
    stats_bucket: str | None = None,
) -> str:
    """Content-addressed key for one compiled program.

    ``stats_bucket`` (a :meth:`~repro.stats.StatsCatalog.bucket_key`)
    keys *plans* rather than just programs: the same source compiled
    under different data shapes yields different join orders, and each
    lives in the cache under its own (program, stats-bucket) identity.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_SCHEMA_VERSION}\x00".encode())
    hasher.update(normalize_source(source).encode())
    hasher.update(b"\x00")
    hasher.update(provenance_name.encode())
    hasher.update(b"\x00")
    hasher.update(repr(optimizations.key_fields()).encode())
    hasher.update(b"\x00")
    hasher.update(b"batched" if batched else b"single")
    if stats_bucket is not None:
        hasher.update(b"\x00stats\x00")
        hasher.update(stats_bucket.encode())
    return hasher.hexdigest()


def plan_bucket(
    stats: StatsCatalog | None, cost_model: CostModel | None
) -> str | None:
    """The plan-identity fragment of a cache key: the catalog's bucket
    plus the cost model's pricing — both shape the chosen join orders,
    so both must separate cached artifacts."""
    if stats is None or not stats:
        return None
    model = cost_model or CostModel()
    return f"{stats.bucket_key()}|{model.key()}"


def rule_estimates_of(ram: RamProgram) -> dict[str, float]:
    """Planner estimates keyed the way the interpreter reports actuals
    (``s<i>r<j>`` — stratum and rule index)."""
    estimates: dict[str, float] = {}
    for i, stratum in enumerate(ram.strata):
        for j, rule in enumerate(stratum.rules):
            if rule.estimated_rows is not None:
                estimates[f"s{i}r{j}"] = rule.estimated_rows
    return estimates


def compile_source(
    source: str,
    provenance_name: str,
    optimizations: OptimizationConfig,
    batched: bool = False,
    stats: StatsCatalog | None = None,
    cost_model: CostModel | None = None,
    bucket: str | None = None,
) -> CompiledProgram:
    """Run the full pipeline once: parse -> resolve -> RAM -> APM.

    ``stats`` routes atom ordering through the cost-based planner
    (gated on ``optimizations.cost_based``); the resulting artifact
    records the catalog's bucket and per-rule cardinality estimates so
    executions can be checked against the plan's expectations.

    ``bucket`` lets :meth:`ProgramCache.get_or_compile` pin the plan
    bucket it keyed the cache slot under; computed here otherwise.  The
    catalog is *live* (other runs may advance relations while this
    compile proceeds outside the cache lock), so the bucket is fixed
    once, up front — slot key and artifact key must never diverge, or
    drift invalidation would target a key the cache never held.
    """
    start = time.perf_counter()
    if not optimizations.cost_based:
        stats = None
    if bucket is None:
        bucket = plan_bucket(stats, cost_model)
    ast_program = parse(source)
    batch_fact_rows: dict[str, list[tuple]] = {}
    if batched:
        ast_program = batch_transform(ast_program)
        # Fact blocks stay sample-relative: pull them out before
        # resolution (their arity predates the sample column) and
        # replicate them per sample at load time.
        symbols = SymbolTable()
        batch_fact_rows = _resolve_fact_blocks(ast_program.fact_blocks, symbols)
        ast_program.fact_blocks = []
        resolved = resolve(ast_program, symbols)
    else:
        resolved = resolve(ast_program)
    ram = compile_program(resolved, stats=stats, cost_model=cost_model)
    apm = compile_ram(ram)
    if optimizations.apm_passes:
        apm = optimize(apm)
    return CompiledProgram(
        key=cache_key(source, provenance_name, optimizations, batched, bucket),
        resolved=resolved,
        ram=ram,
        apm=apm,
        batch_fact_rows=batch_fact_rows,
        compile_seconds=time.perf_counter() - start,
        stats_bucket=bucket,
        rule_estimates=rule_estimates_of(ram),
    )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Artifacts dropped by drift-triggered invalidation.
    invalidations: int = 0
    #: Trace-JIT code-cache counters, separate from the plan counters
    #: above: a run that hits the plan cache may still miss the trace
    #: cache (not hot yet / signature drift / invalidated with the plan).
    trace_hits: int = 0
    trace_misses: int = 0
    #: Guard-failure (or unsupported-construct) deopts reported back by
    #: the engine — every one executed interpreted, never wrong.
    trace_deopts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def trace_lookups(self) -> int:
        return self.trace_hits + self.trace_misses


class ProgramCache:
    """Thread-safe LRU cache of :class:`CompiledProgram` artifacts.

    Parameters
    ----------
    capacity:
        Maximum number of compiled programs retained; ``None`` means
        unbounded.  Eviction is least-recently-used.
    """

    def __init__(self, capacity: int | None = 256):
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CompiledProgram] = OrderedDict()
        #: Trace-JIT code cache: compiled traces live *alongside* their
        #: plan, keyed by ``(plan key, dtype signature)``, and share the
        #: plan's lifecycle — eviction or drift invalidation of the plan
        #: drops its traces too.
        self._traces: dict[tuple[str, str], object] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._traces.clear()
            self.stats = CacheStats()

    def get(self, key: str) -> CompiledProgram | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def invalidate(self, key: str) -> bool:
        """Drop one cached artifact (the adaptive planner's drift path:
        observed cardinalities strayed too far from the plan's estimates,
        so the next lookup for this (program, stats-bucket) identity must
        re-plan against fresh statistics).  Returns whether it was held.
        """
        with self._lock:
            self._drop_traces(key)
            if key in self._entries:
                del self._entries[key]
                self.stats.invalidations += 1
                return True
            return False

    # ------------------------------------------------------------------
    # Trace-JIT code cache

    def _drop_traces(self, plan_key: str) -> None:
        for trace_key in [k for k in self._traces if k[0] == plan_key]:
            del self._traces[trace_key]

    def get_trace(self, plan_key: str, signature: str, apm=None):
        """Look up a compiled trace.  When ``apm`` is given, a trace
        compiled against a *different* :class:`ApmProgram` instance is a
        miss (and is dropped): its kernels are keyed by variant identity,
        so a recompiled plan — e.g. after drift invalidation — must
        re-record rather than dispatch into stale kernels."""
        with self._lock:
            trace = self._traces.get((plan_key, signature))
            if trace is not None and apm is not None and trace.apm is not apm:
                del self._traces[(plan_key, signature)]
                trace = None
            if trace is None:
                self.stats.trace_misses += 1
            else:
                self.stats.trace_hits += 1
            return trace

    def put_trace(self, trace) -> None:
        with self._lock:
            self._traces[(trace.plan_key, trace.signature)] = trace

    def record_trace_deopt(self, n: int = 1) -> None:
        with self._lock:
            self.stats.trace_deopts += n

    def get_or_compile(
        self,
        source: str,
        provenance_name: str,
        optimizations: OptimizationConfig,
        batched: bool = False,
        stats: StatsCatalog | None = None,
        cost_model: CostModel | None = None,
    ) -> tuple[CompiledProgram, bool]:
        """Return ``(artifact, was_hit)`` for the given program identity.

        ``stats`` adds the catalog's bucket to the identity, giving each
        observed data shape its own compiled plan (a serving fleet's
        same-shape requests all hit one artifact).

        The compile itself runs outside the lock, so a rare race can
        compile the same program twice; last-writer-wins is harmless
        because artifacts for one key are interchangeable.
        """
        bucket = (
            plan_bucket(stats, cost_model) if optimizations.cost_based else None
        )
        key = cache_key(source, provenance_name, optimizations, batched, bucket)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry, True
            self.stats.misses += 1
        compiled = compile_source(
            source, provenance_name, optimizations, batched, stats, cost_model,
            bucket=bucket,
        )
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    evicted_key, _ = self._entries.popitem(last=False)
                    self._drop_traces(evicted_key)
                    self.stats.evictions += 1
        return compiled, False


#: Process-wide cache used by every engine unless told otherwise.
_DEFAULT_CACHE = ProgramCache()


def default_cache() -> ProgramCache:
    return _DEFAULT_CACHE

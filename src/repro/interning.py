"""String interning.

Datalog values on the device are 64-bit integers.  Programs that speak about
strings (kinship relations, RNA bases, analysis alarm names) intern them
through a :class:`SymbolTable`, which provides a stable bijection between
strings and small non-negative ids.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class SymbolTable:
    """A bidirectional string <-> int mapping with insertion-order ids."""

    def __init__(self, symbols: Iterable[str] = ()):
        self._to_id: dict[str, int] = {}
        self._to_str: list[str] = []
        for symbol in symbols:
            self.intern(symbol)

    def intern(self, symbol: str) -> int:
        """Return the id for ``symbol``, assigning a fresh one if needed."""
        existing = self._to_id.get(symbol)
        if existing is not None:
            return existing
        new_id = len(self._to_str)
        self._to_id[symbol] = new_id
        self._to_str.append(symbol)
        return new_id

    def intern_all(self, symbols: Iterable[str]) -> list[int]:
        return [self.intern(s) for s in symbols]

    def lookup(self, symbol_id: int) -> str:
        """Return the string for an id; raises ``KeyError`` if unknown."""
        if 0 <= symbol_id < len(self._to_str):
            return self._to_str[symbol_id]
        raise KeyError(f"unknown symbol id {symbol_id}")

    def id_of(self, symbol: str) -> int:
        """Return the id for an already-interned string."""
        return self._to_id[symbol]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._to_id

    def __len__(self) -> int:
        return len(self._to_str)

    def __iter__(self) -> Iterator[str]:
        return iter(self._to_str)

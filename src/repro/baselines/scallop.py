"""The Scallop baseline: a tuple-at-a-time CPU engine with provenance.

Scallop is the paper's primary comparison target — the state-of-the-art
CPU neurosymbolic framework.  This stand-in shares Lobster's front-end
(parser, resolver, stratifier, planner — mirroring how Lobster itself
reuses Scallop's front-end, §5) and the same provenance semantics via each
semiring's *scalar* interface, but executes rules one tuple at a time with
nested-loop joins over hash indices, like a classic bottom-up Datalog
interpreter.  The per-tuple interpretation overhead versus Lobster's
whole-column kernels is precisely the CPU-vs-GPU contrast the paper
measures.

Unlike the device engine, this baseline supports the general top-k-proofs
semiring (the paper's §3.5 limitation cuts the other way here).
"""

from __future__ import annotations

import time

import numpy as np

from ..datalog import ast
from ..datalog.program import compile_source
from ..datalog.resolver import ResolvedRule
from ..errors import EvaluationTimeout, LobsterError
from ..provenance import registry
from ..provenance.base import Provenance
from ..ram import planner


class ScallopDatabase:
    """Tuple-level fact store: predicate -> {row: tag}."""

    def __init__(self, provenance: Provenance):
        self.provenance = provenance
        self.facts: dict[str, dict[tuple, object]] = {}
        self._probs: list[float] = []
        self._groups: list[int] = []
        self._pending: list[tuple[str, tuple, int]] = []
        self._next_group = 0
        self._finalized = False

    @property
    def n_input_facts(self) -> int:
        return len(self._probs)

    def new_exclusion_group(self) -> int:
        group = self._next_group
        self._next_group += 1
        return group

    def add_facts(self, name, rows, probs=None, exclusive=False, group=None) -> np.ndarray:
        if probs is None:
            self._pending.extend((name, tuple(row), -1) for row in rows)
            return np.full(len(rows), -1, dtype=np.int64)
        if group is None:
            group = -1
            if exclusive:
                group = self.new_exclusion_group()
        start = len(self._probs)
        for row, prob in zip(rows, probs):
            self._pending.append((name, tuple(row), len(self._probs)))
            self._probs.append(float(prob))
            self._groups.append(group)
        return np.arange(start, start + len(rows), dtype=np.int64)

    def finalize(self) -> None:
        if self._finalized:
            return
        self.provenance.setup(
            np.asarray(self._probs, dtype=np.float64),
            np.asarray(self._groups, dtype=np.int64),
        )
        for name, row, fact_id in self._pending:
            tag = self.provenance.scalar_input(fact_id)
            store = self.facts.setdefault(name, {})
            if row in store:
                store[row] = self.provenance.scalar_oplus(store[row], tag)
            else:
                store[row] = tag
        self._finalized = True

    def rows(self, name: str) -> dict[tuple, object]:
        return self.facts.get(name, {})

    def prob(self, name: str, row: tuple) -> float:
        tag = self.facts.get(name, {}).get(tuple(row))
        if tag is None:
            return 0.0
        return self.provenance.scalar_prob(tag)


class ScallopInterpreter:
    """Semi-naive tuple-at-a-time evaluation with tag saturation."""

    def __init__(
        self,
        source: str,
        provenance: str | Provenance = "unit",
        timeout_seconds: float | None = None,
        max_iterations: int = 100_000,
        **provenance_kwargs,
    ):
        self.resolved = compile_source(source)
        if isinstance(provenance, Provenance):
            self._provenance_factory = lambda: type(provenance)()
        else:
            self._provenance_factory = lambda: registry.create(
                provenance, **provenance_kwargs
            )
        self.timeout_seconds = timeout_seconds
        self.max_iterations = max_iterations
        self.iterations_run = 0

    # ------------------------------------------------------------------

    def create_database(self) -> ScallopDatabase:
        database = ScallopDatabase(self._provenance_factory())
        for predicate, rows in self.resolved.facts.items():
            database.add_facts(predicate, rows)
        return database

    def run(self, database: ScallopDatabase) -> None:
        database.finalize()
        deadline = (
            time.perf_counter() + self.timeout_seconds
            if self.timeout_seconds is not None
            else None
        )
        for stratum in self.resolved.strata:
            self._run_stratum(stratum, database, deadline)

    # ------------------------------------------------------------------

    def _run_stratum(self, stratum, database: ScallopDatabase, deadline) -> None:
        provenance = database.provenance
        pred_set = set(stratum.predicates)
        recent: dict[str, set[tuple]] = {
            predicate: set(database.rows(predicate)) for predicate in pred_set
        }
        ordered_rules = [
            (rule, planner.order_atoms(rule.positives)) for rule in stratum.rules
        ]

        iteration = 0
        while True:
            iteration += 1
            self.iterations_run += 1
            if deadline is not None and time.perf_counter() > deadline:
                raise EvaluationTimeout(
                    f"Scallop baseline exceeded {self.timeout_seconds}s"
                )
            derived: dict[str, dict[tuple, object]] = {}
            for rule, ordered in ordered_rules:
                recursive_positions = [
                    index
                    for index, atom in enumerate(ordered)
                    if atom.predicate in pred_set
                ]
                if recursive_positions and iteration >= 1:
                    variants = recursive_positions
                elif iteration == 1:
                    variants = [None]
                else:
                    continue
                for recent_position in variants:
                    self._eval_rule(
                        rule, ordered, recent_position, database, recent, derived
                    )

            frontier: dict[str, set[tuple]] = {p: set() for p in pred_set}
            for predicate, rows in derived.items():
                store = database.facts.setdefault(predicate, {})
                for row, tag in rows.items():
                    if provenance.scalar_is_zero(tag):
                        continue
                    existing = store.get(row)
                    if existing is None:
                        store[row] = tag
                        frontier[predicate].add(row)
                    elif provenance.scalar_improved(existing, tag):
                        store[row] = provenance.scalar_oplus(existing, tag)
                        frontier[predicate].add(row)
            recent = frontier
            if not any(recent.values()):
                break
            if iteration >= self.max_iterations:
                raise LobsterError("scallop baseline failed to saturate")

    # ------------------------------------------------------------------

    def _eval_rule(
        self,
        rule: ResolvedRule,
        ordered: list[ast.Atom],
        recent_position: int | None,
        database: ScallopDatabase,
        recent: dict[str, set[tuple]],
        derived: dict[str, dict[tuple, object]],
    ) -> None:
        provenance = database.provenance

        def atom_rows(position: int):
            atom = ordered[position]
            store = database.rows(atom.predicate)
            if position == recent_position:
                for row in recent.get(atom.predicate, ()):
                    tag = store.get(row)
                    if tag is not None:
                        yield row, tag
            else:
                yield from store.items()

        def extend(position: int, env: dict[str, object], tag) -> None:
            if position == len(ordered):
                self._finish(rule, env, tag, database, derived)
                return
            atom = ordered[position]
            for row, row_tag in atom_rows(position):
                bound = self._unify(atom, row, env)
                if bound is None:
                    continue
                if not self._comparisons_hold(rule, bound):
                    continue
                extend(position + 1, bound, provenance.scalar_otimes(tag, row_tag))

        extend(0, {}, provenance.scalar_one())

    def _finish(self, rule, env, tag, database, derived) -> None:
        provenance = database.provenance
        for atom in rule.negatives:
            row = tuple(self._eval_term(arg, env) for arg in atom.args)
            if row in database.rows(atom.predicate):
                return
        head_row = tuple(self._eval_term(term, env) for term in rule.head_terms)
        bucket = derived.setdefault(rule.head, {})
        if head_row in bucket:
            bucket[head_row] = provenance.scalar_oplus(bucket[head_row], tag)
        else:
            bucket[head_row] = tag

    @staticmethod
    def _unify(atom: ast.Atom, row: tuple, env: dict) -> dict | None:
        bound = dict(env)
        for arg, value in zip(atom.args, row):
            if isinstance(arg, ast.Wildcard):
                continue
            if isinstance(arg, ast.Var):
                existing = bound.get(arg.name)
                if existing is None:
                    bound[arg.name] = value
                elif existing != value:
                    return None
                continue
            if isinstance(arg, ast.IntConst):
                if value != arg.value:
                    return None
                continue
            if isinstance(arg, ast.FloatConst):
                if value != arg.value:
                    return None
                continue
            return None
        return bound

    def _comparisons_hold(self, rule: ResolvedRule, env: dict) -> bool:
        for comparison in rule.comparisons:
            lhs = self._try_eval(comparison.lhs, env)
            rhs = self._try_eval(comparison.rhs, env)
            if lhs is None or rhs is None:
                continue  # not yet bound; checked again when complete
            op = comparison.op
            ok = (
                lhs == rhs
                if op == "=="
                else lhs != rhs
                if op == "!="
                else lhs < rhs
                if op == "<"
                else lhs <= rhs
                if op == "<="
                else lhs > rhs
                if op == ">"
                else lhs >= rhs
            )
            if not ok:
                return False
        return True

    def _try_eval(self, term: ast.Term, env: dict):
        try:
            return self._eval_term(term, env)
        except KeyError:
            return None

    def _eval_term(self, term: ast.Term, env: dict):
        if isinstance(term, ast.Var):
            return env[term.name]
        if isinstance(term, (ast.IntConst, ast.FloatConst)):
            return term.value
        if isinstance(term, ast.BinOp):
            lhs = self._eval_term(term.lhs, env)
            rhs = self._eval_term(term.rhs, env)
            op = term.op
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs / rhs if rhs != 0 else float("inf")
            if op == "%":
                return lhs % rhs if rhs != 0 else 0
            raise LobsterError(f"unknown operator {op!r}")
        if isinstance(term, ast.Neg):
            return -self._eval_term(term.operand, env)
        raise LobsterError(f"cannot evaluate term {term!r}")

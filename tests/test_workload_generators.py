"""Property tests on the synthetic data generators.

The benchmark shapes depend on these generators behaving like the corpora
they stand in for, so their structural invariants get their own tests.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import clutrr, graphs, hwf, pacman, pathfinder, rna, static_analysis
from repro.workloads.analytics import cspa_instance


class TestGraphGenerators:
    @pytest.mark.parametrize("name", sorted(graphs.CORPUS))
    def test_edges_well_formed(self, name):
        edges = graphs.load_graph(name)
        n_nodes = max(max(a, b) for a, b in edges) + 1
        assert all(0 <= a < n_nodes and 0 <= b < n_nodes for a, b in edges)
        assert len(edges) == len(set(edges)), "duplicate edges"

    def test_mesh_is_symmetric(self):
        edges = set(graphs.fe_mesh(8))
        assert all((b, a) in edges for a, b in edges)

    def test_road_grid_mostly_planar_degree(self):
        edges = graphs.road_grid(10, seed=1)
        degree = {}
        for a, _ in edges:
            degree[a] = degree.get(a, 0) + 1
        assert max(degree.values()) <= 5  # 4-neighbour + rare diagonal

    def test_citation_graph_is_acyclic_by_construction(self):
        edges = graphs.citation_graph(100, 3, seed=2)
        assert all(a > b for a, b in edges)  # later papers cite earlier


class TestPathfinderGenerator:
    @given(st.integers(4, 8), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_positive_instances_are_connected(self, grid, seed):
        instance = pathfinder.generate_instance(grid, seed, positive=True)
        # BFS over dash-present edges connects the endpoints.
        present = {
            edge
            for edge, has_dash in zip(instance.lattice_edges, instance.dash_present)
            if has_dash
        }
        frontier = {instance.endpoints[0]}
        seen = set(frontier)
        while frontier:
            nxt = {
                b for a, b in present if a in frontier and b not in seen
            }
            seen |= nxt
            frontier = nxt
        assert instance.endpoints[1] in seen

    @given(st.integers(4, 8), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_negative_instances_are_disconnected(self, grid, seed):
        instance = pathfinder.generate_instance(grid, seed, positive=False)
        present = {
            edge
            for edge, has_dash in zip(instance.lattice_edges, instance.dash_present)
            if has_dash
        }
        frontier = {instance.endpoints[0]}
        seen = set(frontier)
        while frontier:
            nxt = {b for a, b in present if a in frontier and b not in seen}
            seen |= nxt
            frontier = nxt
        if instance.endpoints[0] != instance.endpoints[1]:
            assert instance.endpoints[1] not in seen

    def test_pruning_keeps_id_alignment(self):
        instance = pathfinder.generate_instance(5, seed=3, positive=True)
        probs = pathfinder.pretrained_edge_probs(instance, seed=3)
        from repro import LobsterEngine

        engine = LobsterEngine(pathfinder.PROGRAM, provenance="diff-top-1-proofs")
        db = engine.create_database()
        ids = pathfinder.populate_database(db, instance, probs, min_prob=0.3)
        kept = ids >= 0
        assert kept.sum() == (probs >= 0.3).sum()
        assert (ids[~kept] == -1).all()


class TestPacmanGenerator:
    @given(st.integers(5, 10), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_corridor_guarantees_solvability(self, grid, seed):
        instance = pacman.generate_instance(grid, seed)
        assert instance.optimal_first_moves  # BFS found a safe route

    def test_actor_and_goal_never_enemies(self):
        for seed in range(10):
            instance = pacman.generate_instance(6, seed)
            assert not instance.enemy[instance.actor]
            assert not instance.enemy[instance.goal]


class TestHwfGenerator:
    @given(st.sampled_from([1, 3, 5, 7, 9, 11, 13]), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_formula_well_formed_and_finite(self, length, seed):
        instance = hwf.generate_instance(length, seed)
        assert len(instance.symbols) == length
        assert np.isfinite(instance.value)
        for position, symbol in enumerate(instance.symbols):
            if position % 2 == 0:
                assert symbol.isdigit()
            else:
                assert symbol in hwf.OPS
        # Probabilities are a distribution per position.
        assert np.allclose(instance.symbol_probs.sum(axis=1), 1.0)

    def test_no_division_by_zero(self):
        for seed in range(50):
            instance = hwf.generate_instance(13, seed)
            for position, symbol in enumerate(instance.symbols):
                if symbol == "/":
                    assert instance.symbols[position + 1] != "0"

    def test_even_length_rejected(self):
        with pytest.raises(ValueError):
            hwf.generate_instance(4, seed=0)


class TestClutrrGenerator:
    @given(st.integers(2, 10), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_chain_always_composable(self, length, seed):
        instance = clutrr.generate_instance(length, seed)
        assert clutrr.compose_chain(instance.chain_relations) == instance.target_relation

    def test_composition_table_closed(self):
        for r1, r2, r3 in clutrr.composition_table():
            assert 0 <= r3 < len(clutrr.RELATIONS)


class TestRnaGenerator:
    @given(st.integers(20, 80), st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_candidates_respect_chemistry_and_hairpin(self, length, seed):
        instance = rna.generate_instance(length, seed)
        for i, j in instance.pair_candidates:
            assert j - i >= 4
            assert (instance.sequence[i], instance.sequence[j]) in rna._COMPLEMENTARY
        assert ((instance.pair_probs > 0) & (instance.pair_probs < 1)).all()
        assert len(instance.unpaired_probs) == length


class TestPsaAndCspaInstances:
    def test_subject_sizes_ordered(self):
        sizes = [static_analysis.SUBJECTS[s][1] for s in static_analysis.SUBJECTS]
        assert sizes[0] == min(sizes)  # sunflow-core is the smallest

    def test_probabilities_in_range(self):
        instance = static_analysis.psa_instance("graphchi")
        for rows, probs in instance["probabilistic"].values():
            assert len(rows) == len(probs)
            assert ((np.asarray(probs) > 0) & (np.asarray(probs) <= 1)).all()

    def test_cspa_unknown_subject(self):
        with pytest.raises(KeyError):
            cspa_instance("netbsd")

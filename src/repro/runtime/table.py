"""Columnar tables (§2.4).

A relation instance is a flat, column-oriented table: ``arity`` equally
sized value columns plus one tag column for provenance.  Row count is
tracked explicitly so arity-0 relations (e.g. ``endpoints_connected()``)
behave correctly — they hold at most one logical row after deduplication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..provenance.base import Provenance


@dataclass
class Table:
    """A columnar table: value columns + provenance tags."""

    columns: list[np.ndarray]
    tags: np.ndarray
    n_rows: int

    @classmethod
    def empty(cls, dtypes: tuple[np.dtype, ...], provenance: Provenance) -> "Table":
        columns = [np.empty(0, dtype=dt) for dt in dtypes]
        return cls(columns, np.empty(0, dtype=provenance.tag_dtype()), 0)

    @classmethod
    def from_rows(
        cls,
        rows: list[tuple],
        dtypes: tuple[np.dtype, ...],
        tags: np.ndarray,
    ) -> "Table":
        """Build a columnar table from Python row tuples.

        One ``np.fromiter`` pass per column — the generator walks the row
        list per column, but element conversion happens in C, which beats
        the per-cell ``column[i] = row[j]`` double loop by a wide margin
        (pinned by a micro-benchmark in ``tests/test_table_database.py``).
        """
        n = len(rows)
        columns = [
            np.fromiter((row[j] for row in rows), dtype=dt, count=n)
            for j, dt in enumerate(dtypes)
        ]
        return cls(columns, tags, n)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def is_empty(self) -> bool:
        return self.n_rows == 0

    def take(self, indices: np.ndarray) -> "Table":
        return Table([c[indices] for c in self.columns], self.tags[indices], len(indices))

    def rows(self) -> list[tuple]:
        """Materialize rows as Python tuples (for tests and output)."""
        return [tuple(col[i].item() for col in self.columns) for i in range(self.n_rows)]

    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.columns) + self.tags.nbytes

    @staticmethod
    def concat(tables: list["Table"], dtypes, provenance: Provenance) -> "Table":
        tables = [t for t in tables if t.n_rows > 0]
        if not tables:
            return Table.empty(dtypes, provenance)
        if len(tables) == 1:
            return tables[0]
        columns = [
            np.concatenate([t.columns[j] for t in tables])
            for j in range(len(dtypes))
        ]
        tags = np.concatenate([t.tags for t in tables])
        return Table(columns, tags, sum(t.n_rows for t in tables))

"""Multi-query serving sessions (compile once, run many).

A :class:`LobsterSession` batches independent databases through **one**
compiled program on **one** shared :class:`~repro.gpu.device.VirtualDevice`.
Relative to constructing and running engines per query, the session
amortizes every one-time cost the device profile models:

* the program is compiled (or fetched from the program cache) exactly
  once, before the first query;
* the host<->device transfer *plan* is computed once per program (memoized
  in :mod:`repro.apm.schedule`);
* allocation sites stay warm across queries — one shared
  :class:`~repro.apm.interpreter.ApmInterpreter` retains its allocation
  sites, so after the first database the arena hands back the previous
  query's buffers instead of paying the simulated allocation latency.

For throughput serving, a session can spread its queries across a
:class:`~repro.dist.pool.DevicePool`: queries round-robin over the pool's
devices (each with its own warm interpreter), and the report aggregates
the per-device profiles counter-wise.  Sessions are thread-safe —
``submit``/``result`` may be called from a pool of worker threads while
another thread drains (``run_all`` serializes drains).

Example
-------
>>> from repro import LobsterEngine, LobsterSession
>>> engine = LobsterEngine(
...     "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."
... )
>>> session = LobsterSession(engine)
>>> for edges in ([(0, 1)], [(1, 2)], [(0, 2), (2, 3)]):
...     db = session.create_database()
...     _ = db.add_facts("edge", edges)
...     _ = session.submit(db)
>>> report = session.run_all()
>>> len(report.results)
3
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .database import Database
from .engine import ExecutionResult, LobsterEngine
from ..apm.interpreter import ApmInterpreter
from ..dist.pool import DevicePool
from ..errors import LobsterError, TicketNotRunError, UnknownTicketError
from ..gpu.device import DeviceProfile


@dataclass
class SubmittedQuery:
    """One enqueued unit of work: a database awaiting (or holding) a run."""

    ticket: int
    database: Database
    result: ExecutionResult | None = None


@dataclass
class SessionReport:
    """Aggregate outcome of one :meth:`LobsterSession.run_all` drain.

    Separates the one-time compile cost from steady-state execution, the
    SPEC CPU2026-style split every benchmark's warm-path mode reports.
    """

    #: One-time front-end cost (0.0 when the program cache already held
    #: the artifact).
    compile_seconds: float
    #: Whether the engine's program was served from the cache.
    program_from_cache: bool
    #: Per-query results, in submission order, for this drain.
    results: list[ExecutionResult] = field(default_factory=list)
    #: Device counters accumulated across the whole drain — the
    #: counter-wise :meth:`DeviceProfile.merge` of ``device_profiles``.
    profile: DeviceProfile | None = None
    #: Number of devices the drain used (1 = the engine's own device;
    #: >1 = a :class:`~repro.dist.pool.DevicePool` round-robin, or the
    #: shard devices of a ``shards=N`` engine).
    pool_size: int = 1
    #: Per-device profile deltas for this drain, pool order.
    device_profiles: list[DeviceProfile] = field(default_factory=list)

    @property
    def steady_state_seconds(self) -> float:
        """Measured wall time summed over the drained queries."""
        return sum(result.wall_seconds for result in self.results)

    @property
    def modeled_overhead_seconds(self) -> float:
        return sum(result.simulated_overhead_seconds for result in self.results)

    @property
    def total_seconds(self) -> float:
        return (
            self.compile_seconds
            + self.steady_state_seconds
            + self.modeled_overhead_seconds
        )

    @property
    def simulated_parallel_seconds(self) -> float:
        """Modeled makespan of the drain: pool devices serve queries
        concurrently, so the busiest device bounds the batch."""
        if not self.device_profiles:
            return 0.0
        return max(profile.busy_seconds for profile in self.device_profiles)

    @property
    def jit_runs(self) -> int:
        """Queries in this drain that executed fused trace-JIT kernels."""
        return sum(1 for result in self.results if result.jit)

    @property
    def jit_deopts(self) -> int:
        """Queries in this drain that (fully or partly) deopted from the
        code cache back to the interpreter."""
        return sum(
            1 for result in self.results if result.jit_deopt is not None
        )


class LobsterSession:
    """Serve many independent databases through one compiled program.

    Thread-safety: the queue (``submit``/``database``/``result``) is
    guarded by one lock so worker threads can enqueue concurrently;
    drains serialize on a lock owned by the *shared resource* — the
    pool when one is supplied, the engine otherwise — so even two
    sessions sharing one engine or one pool cannot interleave drains on
    the same devices.  Queue mutations never happen while holding the
    drain lock, so submitting during a drain is safe (the new query
    lands in the next drain).
    """

    def __init__(
        self,
        engine: LobsterEngine,
        pool: DevicePool | None = None,
        metrics=None,
        tracer=None,
    ):
        """``metrics`` (a :class:`~repro.serve.metrics.MetricsRegistry`,
        or anything with the same ``counter``/``histogram`` shape)
        instruments every query this session runs — counts, incremental
        hits, and the modeled per-query service-time distribution.

        ``tracer`` (a :class:`~repro.obs.Tracer`) overrides the engine's
        own tracer for queries run through this session — the serving
        scheduler passes its serve-clock tracer here so engine-run spans
        nest under the micro-batch spans.  ``None`` defers to whatever
        the engine was constructed with."""
        if pool is not None and engine._use_sharded():
            raise LobsterError(
                "pick one scaling axis per session: a sharded engine splits "
                "each query across its shard devices, a DevicePool spreads "
                "queries across devices — not both"
            )
        self.engine = engine
        self.pool = pool
        self.metrics = metrics
        self.tracer = tracer
        self._queries: dict[int, SubmittedQuery] = {}
        self._next_ticket = 0
        self._lock = threading.Lock()  # queue + ticket counter
        # Drains serialize on the shared resource's lock, not a
        # per-session one, so sessions sharing an engine/pool are safe.
        self._run_lock = pool._drain_lock if pool else engine._drain_lock

        def make_interpreter(device) -> ApmInterpreter:
            # One interpreter per device for the whole session:
            # allocation sites stay warm across queries (buffer reuse
            # across the batch); data-dependent state (static hash
            # indices) still resets per stratum.
            return ApmInterpreter(
                device,
                enable_static_reuse=engine.optimizations.static_indices,
                enable_buffer_reuse=engine.optimizations.buffer_reuse,
                enable_stratum_scheduling=engine.optimizations.stratum_scheduling,
                max_iterations=engine.max_iterations,
                retain_allocation_sites=engine.optimizations.buffer_reuse,
            )

        # Only the interpreters a drain can actually use are built: pool
        # sessions never touch the engine device, and sharded engines
        # bring their own per-shard interpreters.
        self._interpreter = (
            make_interpreter(engine.device)
            if pool is None and not engine._use_sharded()
            else None
        )
        self._pool_interpreters = (
            [make_interpreter(device) for device in pool.devices] if pool else []
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)

    @property
    def pending(self) -> list[SubmittedQuery]:
        with self._lock:
            return [
                query
                for query in self._queries.values()
                if query.result is None
            ]

    def create_database(self) -> Database:
        """A fresh database for this session's program (convenience
        passthrough to the engine)."""
        return self.engine.create_database()

    def submit(self, database: Database | None = None) -> int:
        """Enqueue ``database`` (or a fresh one) and return its ticket.
        Safe to call from multiple threads concurrently."""
        if database is None:
            database = self.engine.create_database()
        with self._lock:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._queries[ticket] = SubmittedQuery(ticket, database)
        return ticket

    def database(self, ticket: int) -> Database:
        return self._query(ticket).database

    def result(self, ticket: int) -> ExecutionResult:
        """The ticket's execution result.

        Raises :class:`~repro.errors.UnknownTicketError` for a ticket
        this session never issued, and
        :class:`~repro.errors.TicketNotRunError` for one still awaiting
        a drain — both :class:`~repro.errors.SessionError` subclasses.
        """
        result = self._query(ticket).result
        if result is None:
            raise TicketNotRunError(ticket)
        return result

    def _query(self, ticket: int) -> SubmittedQuery:
        with self._lock:
            query = self._queries.get(ticket)
        if query is None:
            raise UnknownTicketError(ticket)
        return query

    # ------------------------------------------------------------------

    def run_all(self) -> SessionReport:
        """Drain the queue: run every pending database to fix point.

        Databases run back-to-back on the shared device (or round-robin
        across the pool's devices) without resetting it, so the batch
        amortizes allocations; the per-query results still carry per-run
        profiles (computed from counter snapshots).  Already-evaluated
        databases with pending facts take the incremental path exactly as
        :meth:`LobsterEngine.run` would.
        """
        with self._run_lock:
            # A sharded engine is its own scaling axis: every query runs
            # through the shard pool (no warm session interpreter there —
            # the sharded executor keeps its own per-shard interpreters).
            sharded = self.engine._use_sharded()
            if self.pool is not None:
                devices = [itp.device for itp in self._pool_interpreters]
            elif sharded:
                devices = self.engine.shard_devices
            else:
                devices = [self.engine.device]
            for device in devices:
                device.profile.reset()
            befores = [device.profile.snapshot() for device in devices]
            report = SessionReport(
                compile_seconds=self.engine.compile_seconds,
                program_from_cache=self.engine.cache_hit,
                pool_size=len(devices),
            )
            for query in self.pending:
                if sharded:
                    interpreter = None
                elif self.pool is not None:
                    index, _ = self.pool.acquire()
                    interpreter = self._pool_interpreters[index]
                else:
                    interpreter = self._interpreter
                report.results.append(self._execute(query, interpreter))
            report.device_profiles = [
                device.profile.since(before)
                for device, before in zip(devices, befores)
            ]
            report.profile = DeviceProfile.merge(report.device_profiles)
            return report

    def run_batch(
        self,
        databases: list[Database],
        *,
        device_index: int | None = None,
        retain: bool = True,
        span_parent=None,
    ) -> list[ExecutionResult]:
        """The serving scheduler's single-batch step: run ``databases``
        back-to-back on **one** device, returning the per-query results
        in order.

        Unlike :meth:`run_all` this never touches other pending queries
        and never resets device profiles, so an online scheduler can
        interleave micro-batches from many sessions over one pool while
        each result still carries its own per-run counters (the
        per-query timing the serve clock charges).  ``device_index``
        pins the batch to that pool device (the scheduler picks it via
        least-loaded acquisition); ``None`` acquires one from the pool —
        or uses the engine's own device for a pool-less session.  The
        batch shares the device's warm interpreter, so requests after
        the first reuse the previous query's buffers.

        ``retain=True`` registers the batch in the session's queue
        (tickets, ``result()`` lookups).  The serving hot path passes
        ``retain=False``: the scheduler owns the results through its
        outcomes, and a long-lived session must not grow a record per
        served request.

        The batch enqueues under the drain lock, so a concurrent
        :meth:`run_all` can never pick these queries up and run them a
        second time; likewise, arguments are validated before anything
        is enqueued, so a failed call leaves no half-submitted queries
        behind.
        """
        if not databases:
            return []
        with self._run_lock:
            if self.engine._use_sharded():
                if device_index is not None:
                    raise LobsterError(
                        "a sharded engine runs every query across its own "
                        "shard pool; device_index only applies to "
                        "DevicePool sessions"
                    )
                interpreter = None
            elif self.pool is not None:
                if device_index is None:
                    device_index, _ = self.pool.acquire()
                elif not 0 <= device_index < len(self.pool):
                    raise LobsterError(
                        f"device_index {device_index} out of range for a "
                        f"{len(self.pool)}-device pool"
                    )
                interpreter = self._pool_interpreters[device_index]
            else:
                if device_index not in (None, 0):
                    raise LobsterError(
                        "this session has no DevicePool; only "
                        "device_index=None (or 0) is valid"
                    )
                interpreter = self._interpreter
            if retain:
                queries = [
                    self._query(self.submit(database))
                    for database in databases
                ]
            else:
                queries = [
                    SubmittedQuery(-1, database) for database in databases
                ]
            return [
                self._execute(query, interpreter, span_parent=span_parent)
                for query in queries
            ]

    def _execute(
        self,
        query: SubmittedQuery,
        interpreter: ApmInterpreter | None,
        span_parent=None,
    ) -> ExecutionResult:
        """Run one query on ``interpreter`` (``None`` = the engine's own
        path, used for sharded engines), recording metrics if a registry
        is attached.  Caller holds the drain lock."""
        kwargs = {}
        if self.tracer is not None:
            kwargs["tracer"] = self.tracer
        if span_parent is not None:
            kwargs["span_parent"] = span_parent
        if interpreter is None:
            result = self.engine.run(query.database, reset_profile=False, **kwargs)
        else:
            result = self.engine.run(
                query.database,
                reset_profile=False,
                _interpreter=interpreter,
                **kwargs,
            )
        query.result = result
        if self.metrics is not None:
            self.metrics.counter("session.queries").inc()
            if result.incremental:
                self.metrics.counter("session.incremental_runs").inc()
            if result.maintained:
                self.metrics.counter("session.maintained_runs").inc()
            if result.maintain_fallback is not None:
                self.metrics.counter("session.maintain_fallbacks").inc()
            if result.replanned:
                # Adaptive engines swap plans transparently between
                # queries; surface each swap so serving dashboards can
                # see the planner reacting to drifting cardinalities.
                self.metrics.counter("session.replans").inc()
            if result.jit:
                self.metrics.counter("jit.trace_hits").inc()
            if result.jit_recorded:
                self.metrics.counter("jit.recordings").inc()
            if result.jit_deopt is not None:
                self.metrics.counter("jit.deopts").inc()
            self.metrics.histogram("session.service_s").observe(
                result.service_seconds
            )
        return result

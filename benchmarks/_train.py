"""Training-loop helpers shared by the Fig. 3/8 benchmarks.

Both engines train the same model with the same losses; only the symbolic
layer differs.  For Lobster the gradient comes from the differentiable
provenance (`engine.backward`); for the Scallop baseline it is computed
from the scalar top-1 proof tags — the product rule over the proof's
members, i.e. the same mathematics Scallop's diff provenances implement.
"""

from __future__ import annotations

import numpy as np

from repro import LobsterEngine
from repro.baselines import ScallopDatabase, ScallopInterpreter


def bce_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    eps = 1e-7
    clipped = np.clip(pred, eps, 1 - eps)
    return (clipped - target) / (clipped * (1 - clipped)) / max(len(pred), 1)


def scallop_output_and_backward(
    database: ScallopDatabase,
    relation: str,
    output_rows: list[tuple],
    grad_out: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward probabilities + input-fact gradients from scalar top-1 tags."""
    probs_in = database.provenance.input_probs
    outputs = np.zeros(len(output_rows))
    grad_in = np.zeros(len(probs_in))
    store = database.rows(relation)
    for index, row in enumerate(output_rows):
        tag = store.get(tuple(row))
        if not tag:
            continue
        proof = max(tag, key=lambda p: float(np.prod(probs_in[list(p)])) if p else 1.0)
        members = sorted(proof)
        prob = float(np.prod(probs_in[members])) if members else 1.0
        outputs[index] = prob
        for member in members:
            others = [m for m in members if m != member]
            partial = float(np.prod(probs_in[others])) if others else 1.0
            grad_in[member] += grad_out[index] * partial
    return outputs, grad_in


def lobster_train_step(engine: LobsterEngine, populate, relation, probs):
    """One symbolic forward+backward on the device engine.

    All derived facts of ``relation`` are pushed toward probability 1 (the
    paper's yes/no supervision).  Returns the gradient w.r.t. ``probs``.
    """
    database = engine.create_database()
    fact_ids = np.asarray(populate(database, probs), dtype=np.int64)
    engine.run(database)
    derived = engine.query_probs(database, relation)
    rows = list(derived) or [()]
    outputs = np.array([derived.get(row, 0.0) for row in rows])
    grad_out = bce_grad(outputs, np.ones(len(rows)))
    grad_facts = engine.backward(
        database, relation, {row: g for row, g in zip(rows, grad_out)}
    )
    grad_probs = np.zeros_like(probs, dtype=np.float64)
    valid = fact_ids >= 0
    if len(grad_probs):
        grad_probs[valid] = grad_facts[fact_ids[valid]]
    return outputs, grad_probs


def scallop_train_step(interpreter: ScallopInterpreter, populate, relation, probs):
    """One symbolic forward+backward on the Scallop baseline."""
    database = interpreter.create_database()
    fact_ids = np.asarray(populate(database, probs), dtype=np.int64)
    interpreter.run(database)
    rows = list(database.rows(relation)) or [()]
    outputs, _ = scallop_output_and_backward(
        database, relation, rows, np.zeros(len(rows))
    )
    grad_out = bce_grad(outputs, np.ones(len(rows)))
    _, grad_facts = scallop_output_and_backward(database, relation, rows, grad_out)
    grad_probs = np.zeros_like(probs, dtype=np.float64)
    valid = fact_ids >= 0
    if len(grad_probs):
        grad_probs[valid] = grad_facts[fact_ids[valid]]
    return outputs, grad_probs

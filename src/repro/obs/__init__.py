"""obs — deterministic end-to-end tracing on the simulated clocks.

Span timelines from serve request down to APM kernel, with profile
reports, ``explain_run`` plan diagnosis, and Chrome trace-event /
Perfetto JSON export.  All timestamps are modeled seconds (serve clock
+ :class:`~repro.gpu.device.DeviceProfile` busy time), so traces replay
bit-for-bit per seed.

Opt in per layer::

    tracer = Tracer()
    engine = LobsterEngine(source, tracing=tracer)       # engine runs
    scheduler = Scheduler(pool, tracer=tracer)           # serve path
    ...
    print(tracer.profile())
    tracer.export_perfetto("trace.json")                 # open in Perfetto
"""

from .export import (
    dumps_trace_events,
    export_perfetto,
    to_trace_events,
    validate_trace_events,
)
from .report import explain_run, profile
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "dumps_trace_events",
    "explain_run",
    "export_perfetto",
    "profile",
    "to_trace_events",
    "validate_trace_events",
]

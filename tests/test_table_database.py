"""Columnar Table and Database layer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ResolutionError
from repro.interning import SymbolTable
from repro.provenance import create
from repro.runtime.database import Database
from repro.runtime.table import Table

INT2 = (np.dtype(np.int64), np.dtype(np.int64))


def unit_provenance():
    provenance = create("unit")
    provenance.setup(np.zeros(0))
    return provenance


class TestTable:
    def test_from_rows(self):
        provenance = unit_provenance()
        table = Table.from_rows([(1, 2), (3, 4)], INT2, provenance.one_tags(2))
        assert table.n_rows == 2 and table.arity == 2
        assert table.rows() == [(1, 2), (3, 4)]

    def test_empty(self):
        table = Table.empty(INT2, unit_provenance())
        assert table.is_empty() and table.arity == 2

    def test_take(self):
        provenance = unit_provenance()
        table = Table.from_rows([(1, 2), (3, 4), (5, 6)], INT2, provenance.one_tags(3))
        taken = table.take(np.array([2, 0]))
        assert taken.rows() == [(5, 6), (1, 2)]

    def test_concat(self):
        provenance = unit_provenance()
        a = Table.from_rows([(1, 2)], INT2, provenance.one_tags(1))
        b = Table.from_rows([(3, 4)], INT2, provenance.one_tags(1))
        merged = Table.concat([a, b], INT2, provenance)
        assert merged.rows() == [(1, 2), (3, 4)]

    def test_concat_empty_list(self):
        merged = Table.concat([], INT2, unit_provenance())
        assert merged.is_empty()

    def test_nbytes(self):
        provenance = unit_provenance()
        table = Table.from_rows([(1, 2)], INT2, provenance.one_tags(1))
        assert table.nbytes() == 16 + 1  # two int64 + one unit tag

    def test_float_columns(self):
        provenance = unit_provenance()
        dtypes = (np.dtype(np.float64),)
        table = Table.from_rows([(1.5,), (2.5,)], dtypes, provenance.one_tags(2))
        assert table.rows() == [(1.5,), (2.5,)]


class TestDatabase:
    def make(self):
        return Database({"edge": INT2}, create("minmaxprob"))

    def test_fact_ids_contiguous(self):
        db = self.make()
        first = db.add_facts("edge", [(0, 1), (1, 2)], probs=[0.5, 0.6])
        second = db.add_facts("edge", [(2, 3)], probs=[0.7])
        assert first.tolist() == [0, 1]
        assert second.tolist() == [2]

    def test_discrete_facts_get_minus_one(self):
        db = self.make()
        ids = db.add_facts("edge", [(0, 1)])
        assert ids.tolist() == [-1]

    def test_exclusive_group_assignment(self):
        db = self.make()
        db.add_facts("edge", [(0, 1), (0, 2)], probs=[0.5, 0.5], exclusive=True)
        db.add_facts("edge", [(1, 2)], probs=[0.9])
        db.finalize()
        assert db.exclusion_groups.tolist() == [0, 0, -1]

    def test_shared_group_across_calls(self):
        db = self.make()
        group = db.new_exclusion_group()
        db.add_facts("edge", [(0, 1)], probs=[0.5], group=group)
        db.add_facts("edge", [(0, 2)], probs=[0.5], group=group)
        db.finalize()
        assert db.exclusion_groups.tolist() == [group, group]

    def test_finalize_binds_provenance(self):
        db = self.make()
        db.add_facts("edge", [(0, 1)], probs=[0.25])
        db.finalize()
        assert db.provenance.input_probs.tolist() == [0.25]
        table = db.result("edge")
        assert db.provenance.prob(table.tags).tolist() == [0.25]

    def test_add_after_finalize_marks_pending_delta(self):
        db = self.make()
        db.add_facts("edge", [(0, 1)])
        db.finalize()
        assert not db.has_pending_facts
        db.add_facts("edge", [(1, 2)])
        assert db.has_pending_facts
        db.finalize()  # folds the delta into the stored relation
        assert not db.has_pending_facts
        assert sorted(db.result("edge").rows()) == [(0, 1), (1, 2)]
        assert db.relation("edge").n_recent() == 1  # only the new row

    def test_unknown_relation_rejected(self):
        db = self.make()
        with pytest.raises(ResolutionError):
            db.relation("nope")

    def test_schema_inference_for_new_relations(self):
        db = self.make()
        db.add_facts("score", [(1, 0.5)])
        assert db.schemas["score"] == (np.dtype(np.int64), np.dtype(np.float64))

    def test_probs_length_mismatch(self):
        db = self.make()
        with pytest.raises(ValueError):
            db.add_facts("edge", [(0, 1)], probs=[0.5, 0.6])

    def test_duplicate_input_facts_oplus(self):
        db = self.make()
        db.add_facts("edge", [(0, 1), (0, 1)], probs=[0.3, 0.8])
        db.finalize()
        rows, probs = db.result_probs("edge")
        assert rows == [(0, 1)]
        assert probs[0] == pytest.approx(0.8)  # minmaxprob oplus = max


class TestSymbolTable:
    def test_roundtrip(self):
        table = SymbolTable()
        a = table.intern("alice")
        b = table.intern("bob")
        assert table.intern("alice") == a
        assert table.lookup(b) == "bob"
        assert "alice" in table and len(table) == 2

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            SymbolTable().lookup(0)

    def test_iteration_order(self):
        table = SymbolTable(["x", "y"])
        assert list(table) == ["x", "y"]
        assert table.id_of("y") == 1

    def test_intern_all(self):
        table = SymbolTable()
        assert table.intern_all(["a", "b", "a"]) == [0, 1, 0]

"""The compile-once program cache.

``LobsterEngine`` historically re-parsed, re-lowered, and re-optimized its
Datalog source on every construction.  For a serving workload — many
engines over the same program, or one benchmark constructing an engine per
sample — that front-end cost dominates; the SPEC CPU2026 methodology of
separating one-time compilation from steady-state throughput demands the
two be measurable independently.

This module provides that separation:

* :func:`compile_source` runs the full front-end pipeline
  (parse -> resolve -> RAM -> APM -> optimize) once and returns an
  immutable :class:`CompiledProgram` artifact;
* :class:`ProgramCache` is a content-addressed, thread-safe LRU cache of
  those artifacts, keyed by the *normalized* Datalog source, the
  provenance name, the :class:`OptimizationConfig`, and the batched flag;
* a process-wide default cache (:func:`default_cache`) makes every engine
  construction a warm path after the first.

Compiled artifacts are safe to share: nothing in the pipeline's output is
mutated at run time (the optimizer runs inside :func:`compile_source`, and
databases receive copies of the schema map).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..apm.compiler import ApmProgram, compile_ram
from ..apm.optimizer import optimize
from ..datalog.parser import parse
from ..datalog.resolver import ResolvedProgram, _resolve_fact_blocks, resolve
from ..interning import SymbolTable
from ..ram.compile_datalog import compile_program
from ..ram.ir import RamProgram
from .batching import batch_transform

#: Bump when the compiled artifact's layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1


@dataclass
class OptimizationConfig:
    """Toggles for the paper's optimizations (the Fig. 10 ablation arms).

    ``apm_passes`` changes the compiled program (it gates the APM-level
    DCE/fusion passes); the other three are runtime toggles.  All four are
    part of the program-cache key so an ablation arm never sees another
    arm's artifact.
    """

    buffer_reuse: bool = True
    static_indices: bool = True
    stratum_scheduling: bool = True
    apm_passes: bool = True

    @classmethod
    def none(cls) -> "OptimizationConfig":
        return cls(False, False, False, False)

    def key_fields(self) -> tuple[bool, bool, bool, bool]:
        return (
            self.buffer_reuse,
            self.static_indices,
            self.stratum_scheduling,
            self.apm_passes,
        )


@dataclass
class CompiledProgram:
    """The immutable output of the compilation pipeline, shareable across
    engines, databases, and runs."""

    #: Content-addressed cache key (hex digest).
    key: str
    resolved: ResolvedProgram
    ram: RamProgram
    apm: ApmProgram
    #: Inline fact blocks of a batched program, replicated per sample at
    #: load time (empty for non-batched programs).
    batch_fact_rows: dict[str, list[tuple]]
    #: One-time front-end cost of producing this artifact.
    compile_seconds: float


def normalize_source(source: str) -> str:
    """Canonicalize Datalog source for content addressing.

    Strips per-line leading/trailing whitespace, blank lines, and
    whole-line ``//`` comments.  Intentionally conservative: whitespace
    *inside* a line is preserved so string literals can never make two
    distinct programs collide.
    """
    lines = []
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        lines.append(stripped)
    return "\n".join(lines)


def cache_key(
    source: str,
    provenance_name: str,
    optimizations: OptimizationConfig,
    batched: bool,
) -> str:
    """Content-addressed key for one compiled program."""
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_SCHEMA_VERSION}\x00".encode())
    hasher.update(normalize_source(source).encode())
    hasher.update(b"\x00")
    hasher.update(provenance_name.encode())
    hasher.update(b"\x00")
    hasher.update(repr(optimizations.key_fields()).encode())
    hasher.update(b"\x00")
    hasher.update(b"batched" if batched else b"single")
    return hasher.hexdigest()


def compile_source(
    source: str,
    provenance_name: str,
    optimizations: OptimizationConfig,
    batched: bool = False,
) -> CompiledProgram:
    """Run the full pipeline once: parse -> resolve -> RAM -> APM."""
    start = time.perf_counter()
    ast_program = parse(source)
    batch_fact_rows: dict[str, list[tuple]] = {}
    if batched:
        ast_program = batch_transform(ast_program)
        # Fact blocks stay sample-relative: pull them out before
        # resolution (their arity predates the sample column) and
        # replicate them per sample at load time.
        symbols = SymbolTable()
        batch_fact_rows = _resolve_fact_blocks(ast_program.fact_blocks, symbols)
        ast_program.fact_blocks = []
        resolved = resolve(ast_program, symbols)
    else:
        resolved = resolve(ast_program)
    ram = compile_program(resolved)
    apm = compile_ram(ram)
    if optimizations.apm_passes:
        apm = optimize(apm)
    return CompiledProgram(
        key=cache_key(source, provenance_name, optimizations, batched),
        resolved=resolved,
        ram=ram,
        apm=apm,
        batch_fact_rows=batch_fact_rows,
        compile_seconds=time.perf_counter() - start,
    )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ProgramCache:
    """Thread-safe LRU cache of :class:`CompiledProgram` artifacts.

    Parameters
    ----------
    capacity:
        Maximum number of compiled programs retained; ``None`` means
        unbounded.  Eviction is least-recently-used.
    """

    def __init__(self, capacity: int | None = 256):
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CompiledProgram] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def get(self, key: str) -> CompiledProgram | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def get_or_compile(
        self,
        source: str,
        provenance_name: str,
        optimizations: OptimizationConfig,
        batched: bool = False,
    ) -> tuple[CompiledProgram, bool]:
        """Return ``(artifact, was_hit)`` for the given program identity.

        The compile itself runs outside the lock, so a rare race can
        compile the same program twice; last-writer-wins is harmless
        because artifacts for one key are interchangeable.
        """
        key = cache_key(source, provenance_name, optimizations, batched)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry, True
            self.stats.misses += 1
        compiled = compile_source(source, provenance_name, optimizations, batched)
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        return compiled, False


#: Process-wide cache used by every engine unless told otherwise.
_DEFAULT_CACHE = ProgramCache()


def default_cache() -> ProgramCache:
    return _DEFAULT_CACHE

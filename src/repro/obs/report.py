"""Text reports over collected spans.

:func:`profile` renders the span tree top-down (aggregated by name
path, with totals, counts, and per-phase percentages) followed by a
flat self-time table — where did the modeled seconds actually go.

:func:`explain_run` joins PR 5's :class:`~repro.stats.PlanFeedback`
estimated-vs-observed cardinalities onto the per-rule variant spans, so
a mis-estimate is printed next to the modeled seconds it cost.
"""

from __future__ import annotations

from .tracer import Span

__all__ = ["explain_run", "profile"]


def _spans_of(source) -> list[Span]:
    spans = getattr(source, "spans", source)
    return list(spans)


class _Node:
    __slots__ = ("name", "total_s", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.total_s = 0.0
        self.count = 0
        self.children: dict[str, _Node] = {}


def _build_tree(spans: list[Span]) -> tuple[_Node, float]:
    """Aggregate spans into a tree keyed by the name path from each
    root: two ``stratum`` spans under the same ``engine.run`` fold into
    one node with count=2.  Returns (synthetic root, trace duration)."""
    by_id = {span.span_id: span for span in spans}
    paths: dict[str, tuple[str, ...]] = {}

    def path_of(span: Span) -> tuple[str, ...]:
        cached = paths.get(span.span_id)
        if cached is None:
            parent = by_id.get(span.parent_id) if span.parent_id else None
            prefix = path_of(parent) if parent is not None else ()
            cached = paths[span.span_id] = prefix + (span.name,)
        return cached

    root = _Node("<root>")
    t_min = float("inf")
    t_max = float("-inf")
    for span in spans:
        if span.kind == "instant":
            continue
        t_min = min(t_min, span.start_s)
        t_max = max(t_max, span.end_s if span.end_s is not None else span.start_s)
        node = root
        for name in path_of(span):
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _Node(name)
            node = child
        node.total_s += span.duration_s
        node.count += 1
    duration = (t_max - t_min) if t_max >= t_min else 0.0
    return root, duration


def _self_seconds(node: _Node) -> float:
    return max(0.0, node.total_s - sum(c.total_s for c in node.children.values()))


def profile(source, *, title: str = "trace profile", max_depth: int = 12) -> str:
    """Render the aggregated span tree plus a flat self-time table."""
    spans = _spans_of(source)
    root, duration = _build_tree(spans)
    n_instants = sum(1 for span in spans if span.kind == "instant")
    lines = [
        title,
        f"  spans: {len(spans) - n_instants}  instants: {n_instants}  "
        f"modeled duration: {duration * 1e3:.3f} ms",
        "",
        f"  {'total ms':>10}  {'self ms':>10}  {'%':>6}  {'count':>6}  name",
    ]
    denominator = duration or 1.0

    def render(node: _Node, depth: int) -> None:
        if depth > max_depth:
            return
        # Children in descending total time — the hot path reads top-down.
        ordered = sorted(
            node.children.values(), key=lambda c: (-c.total_s, c.name)
        )
        for child in ordered:
            lines.append(
                f"  {child.total_s * 1e3:>10.3f}  {_self_seconds(child) * 1e3:>10.3f}  "
                f"{100.0 * child.total_s / denominator:>5.1f}%  {child.count:>6}  "
                f"{'  ' * depth}{child.name}"
            )
            render(child, depth + 1)

    render(root, 0)

    # Flat self-time: fold every node with the same name, sort by self.
    flat: dict[str, tuple[float, int]] = {}

    def collect(node: _Node) -> None:
        for child in node.children.values():
            seconds, count = flat.get(child.name, (0.0, 0))
            flat[child.name] = (seconds + _self_seconds(child), count + child.count)
            collect(child)

    collect(root)
    lines += ["", f"  {'self ms':>10}  {'%':>6}  {'count':>6}  name (flat)"]
    for name, (seconds, count) in sorted(
        flat.items(), key=lambda item: (-item[1][0], item[0])
    ):
        lines.append(
            f"  {seconds * 1e3:>10.3f}  {100.0 * seconds / denominator:>5.1f}%  "
            f"{count:>6}  {name}"
        )
    return "\n".join(lines)


def explain_run(result, source=None, *, title: str = "explain run") -> str:
    """Per-rule plan diagnosis: estimated vs observed output rows (and
    the drift ratio) from :attr:`ExecutionResult.feedback`, joined with
    the modeled seconds spent in that rule's variant spans when a trace
    is supplied.  Rules whose estimates were wildly off appear next to
    the time the mis-estimate cost."""
    feedback = getattr(result, "feedback", None)
    if feedback is None:
        return f"{title}\n  (no feedback on this result — run an adaptive engine)"
    rule_seconds: dict[str, float] = {}
    rule_kinds: dict[str, set] = {}
    if source is not None:
        for span in _spans_of(source):
            rule = span.attrs.get("rule")
            if rule is None or span.kind == "instant":
                continue
            rule_seconds[rule] = rule_seconds.get(rule, 0.0) + span.duration_s
            rule_kinds.setdefault(rule, set()).add(span.kind)
    keys = sorted(
        set(feedback.rule_estimates) | set(feedback.rule_actuals) | set(rule_seconds)
    )
    lines = [
        title,
        f"  stats bucket: {feedback.stats_bucket or '(none)'}  "
        f"max drift: {feedback.max_drift():.2f}x",
        "",
        f"  {'rule':>8}  {'est rows':>10}  {'obs rows':>10}  {'drift':>7}  "
        f"{'modeled ms':>11}  executed as",
    ]
    for key in keys:
        estimate = feedback.rule_estimates.get(key)
        actual = feedback.rule_actuals.get(key)
        if estimate is not None and actual is not None:
            low, high = sorted((max(estimate, 1.0), max(float(actual), 1.0)))
            drift = f"{high / low:>6.1f}x"
        else:
            drift = f"{'-':>7}"
        seconds = rule_seconds.get(key)
        kinds = "+".join(sorted(rule_kinds.get(key, ()))) or "-"
        lines.append(
            f"  {key:>8}  "
            f"{estimate if estimate is not None else '-':>10}  "
            f"{actual if actual is not None else '-':>10}  {drift}  "
            f"{f'{seconds * 1e3:.3f}' if seconds is not None else '-':>11}  {kinds}"
        )
    return "\n".join(lines)

"""Retraction support and the DRed-style maintain path.

The acceptance bar (ISSUE 4's bitwise-fidelity criterion): after every
tick of a seeded mixed insert/retract stream, the maintained database
must equal a cold from-scratch run of the same surviving facts — rows,
tags (observed through probabilities), and gradients — across unit,
minmaxprob, and top-k semirings on TC and CSPA, including the sharded
path's documented fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LobsterEngine,
    RetractionUnsupportedError,
)
from repro.workloads.analytics import CSPA

TC = "rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y))."

edge_lists = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=14,
    unique=True,
)


def cold_tc(edges, provenance="unit", probs=None, **kwargs):
    engine = LobsterEngine(TC, provenance=provenance, **kwargs)
    db = engine.create_database()
    db.add_facts("edge", edges, probs=probs)
    engine.run(db)
    return engine, db


def assert_probs_match(warm, cold, tol=1e-9):
    assert set(warm) == set(cold), sorted(set(warm) ^ set(cold))
    for row, prob in warm.items():
        assert prob == pytest.approx(cold[row], abs=tol), row


class TestRetractFacts:
    def test_retract_matches_cold_unit(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (2, 3), (0, 3)])
        engine.run(db)
        assert db.retract_facts("edge", [(0, 1)]) == 1
        result = engine.run(db)
        assert result.maintained and result.maintain_fallback is None
        _, cold_db = cold_tc([(1, 2), (2, 3), (0, 3)])
        assert sorted(db.result("path").rows()) == sorted(
            cold_db.result("path").rows()
        )

    def test_retract_pending_insert_never_existed(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        db.retract_facts("edge", [(0, 1)])
        engine.run(db)
        assert db.result("path").n_rows == 0

    def test_retract_nonexistent_row_is_noop(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        engine.run(db)
        assert db.retract_facts("edge", [(5, 6)]) == 0
        result = engine.run(db)
        assert not result.maintained  # nothing staged, plain rerun
        assert sorted(db.result("path").rows()) == [(0, 1)]

    def test_retract_weakens_minmaxprob_tag(self):
        # The surviving route's weaker probability must win after the
        # strong route's edge is retracted (tag-level correctness).
        engine = LobsterEngine(TC, provenance="minmaxprob")
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (0, 2)], probs=[0.9, 0.9, 0.5])
        engine.run(db)
        assert engine.query_probs(db, "path")[(0, 2)] == pytest.approx(0.9)
        db.retract_facts("edge", [(0, 1)])
        result = engine.run(db)
        assert result.maintained
        assert engine.query_probs(db, "path")[(0, 2)] == pytest.approx(0.5)

    def test_retract_everything_empties_view(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        engine.run(db)
        db.retract_facts("edge", [(0, 1), (1, 2)])
        result = engine.run(db)
        assert result.maintained
        assert db.result("path").n_rows == 0
        assert db.result("edge").n_rows == 0

    def test_fact_ids_stay_stable_across_retraction(self):
        engine = LobsterEngine(TC, provenance="minmaxprob")
        db = engine.create_database()
        ids1 = db.add_facts("edge", [(0, 1)], probs=[0.5])
        engine.run(db)
        db.retract_facts("edge", [(0, 1)])
        engine.run(db)
        ids2 = db.add_facts("edge", [(1, 2)], probs=[0.7])
        engine.run(db)
        assert ids1.tolist() == [0] and ids2.tolist() == [1]
        assert db.provenance.input_probs.tolist() == [0.5, 0.7]


class TestMaintainFidelity:
    @given(edge_lists, edge_lists, edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_unit_mixed_stream_matches_cold(self, base, retracts, inserts):
        retracts = [e for e in retracts if e in set(base)]
        inserts = [e for e in inserts if e not in set(base)]
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", base)
        engine.run(db)
        db.retract_facts("edge", retracts)
        db.add_facts("edge", inserts)
        engine.run(db)
        survivors = [e for e in base if e not in set(retracts)] + inserts
        _, cold_db = cold_tc(survivors)
        assert sorted(db.result("path").rows()) == sorted(
            cold_db.result("path").rows()
        )

    @given(edge_lists, edge_lists, st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_minmaxprob_mixed_stream_matches_cold(self, base, retracts, seed):
        retracts = [e for e in retracts if e in set(base)]
        rng = np.random.default_rng(seed)
        probs = {e: float(p) for e, p in zip(base, rng.uniform(0.05, 1.0, len(base)))}
        engine = LobsterEngine(TC, provenance="minmaxprob")
        db = engine.create_database()
        db.add_facts("edge", base, probs=[probs[e] for e in base])
        engine.run(db)
        db.retract_facts("edge", retracts)
        warm = engine.run(db)
        assert warm.maintained == bool(retracts)
        survivors = [e for e in base if e not in set(retracts)]
        cold_engine, cold_db = cold_tc(
            survivors, "minmaxprob", [probs[e] for e in survivors]
        )
        assert_probs_match(
            engine.query_probs(db, "path"), cold_engine.query_probs(cold_db, "path")
        )

    def test_every_tick_of_seeded_stream_matches_cold(self):
        # 25 ticks of mixed churn, checked against cold after EVERY tick.
        rng = np.random.default_rng(11)
        engine = LobsterEngine(TC, provenance="minmaxprob")
        db = engine.create_database()
        live: dict[tuple, float] = {}
        for tick in range(25):
            inserts = []
            for _ in range(int(rng.integers(1, 4))):
                row = (int(rng.integers(0, 9)), int(rng.integers(0, 9)))
                if row[0] != row[1] and row not in live:
                    live[row] = float(rng.uniform(0.1, 1.0))
                    inserts.append(row)
            if inserts:
                db.add_facts("edge", inserts, probs=[live[r] for r in inserts])
            if live and tick % 2:
                pool = sorted(live)
                picks = rng.choice(len(pool), size=min(2, len(pool)), replace=False)
                victims = [pool[int(i)] for i in picks]
                db.retract_facts("edge", victims)
                for victim in victims:
                    del live[victim]
            engine.run(db)
            rows = sorted(live)
            cold_engine, cold_db = cold_tc(
                rows, "minmaxprob", [live[r] for r in rows]
            )
            assert_probs_match(
                engine.query_probs(db, "path"),
                cold_engine.query_probs(cold_db, "path"),
            )

    def test_topk_proofs_matches_cold(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]
        probs = [0.9, 0.8, 0.5, 0.7, 0.6]
        engine = LobsterEngine(TC, provenance="top-k-proofs-device", k=3)
        db = engine.create_database()
        db.add_facts("edge", edges, probs=probs)
        engine.run(db)
        db.retract_facts("edge", [(0, 1)])
        result = engine.run(db)
        assert result.maintained
        survivors = [(e, p) for e, p in zip(edges, probs) if e != (0, 1)]
        cold_engine, cold_db = cold_tc(
            [e for e, _ in survivors],
            "top-k-proofs-device",
            [p for _, p in survivors],
            k=3,
        )
        assert_probs_match(
            engine.query_probs(db, "path"), cold_engine.query_probs(cold_db, "path")
        )

    def test_cspa_churn_matches_cold(self):
        rng = np.random.default_rng(7)
        assign = sorted(
            {
                (int(a), int(b))
                for a, b in zip(rng.integers(0, 20, 50), rng.integers(0, 20, 50))
                if a != b
            }
        )
        deref = sorted(
            {
                (int(a), int(b))
                for a, b in zip(rng.integers(0, 20, 25), rng.integers(0, 20, 25))
                if a != b
            }
        )
        probs = {r: float(rng.uniform(0.2, 1.0)) for r in assign}

        def cold(rows):
            engine = LobsterEngine(CSPA, provenance="minmaxprob")
            db = engine.create_database()
            db.add_facts("assign", rows, probs=[probs[r] for r in rows])
            db.add_facts("dereference", deref)
            engine.run(db)
            return engine, db

        engine = LobsterEngine(CSPA, provenance="minmaxprob")
        db = engine.create_database()
        db.add_facts("assign", assign, probs=[probs[r] for r in assign])
        db.add_facts("dereference", deref)
        engine.run(db)
        live = list(assign)
        for tick in range(4):
            victims = live[tick::5][:3]
            db.retract_facts("assign", victims)
            live = [r for r in live if r not in set(victims)]
            result = engine.run(db)
            assert result.maintained, result.maintain_fallback
            cold_engine, cold_db = cold(live)
            for relation in ("value_flow", "memory_alias", "value_alias"):
                assert_probs_match(
                    engine.query_probs(db, relation),
                    cold_engine.query_probs(cold_db, relation),
                )

    def test_multi_stratum_retraction_propagates_downstream(self):
        source = """
        rel tc(x, y) :- edge(x, y) or (tc(x, z) and edge(z, y)).
        rel in_cycle(x) :- tc(x, x).
        rel cycle_pair(x, y) :- in_cycle(x), in_cycle(y), tc(x, y).
        """
        engine = LobsterEngine(source)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (2, 0), (3, 3)])
        engine.run(db)
        assert sorted(db.result("in_cycle").rows()) == [(0,), (1,), (2,), (3,)]
        db.retract_facts("edge", [(2, 0)])  # breaks the 3-cycle
        result = engine.run(db)
        assert result.maintained
        assert sorted(db.result("in_cycle").rows()) == [(3,)]
        assert sorted(db.result("cycle_pair").rows()) == [(3, 3)]

    def test_gradients_after_maintain_match_cold(self):
        engine = LobsterEngine(TC, provenance="diff-minmaxprob")
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (0, 2)], probs=[0.9, 0.4, 0.7])
        engine.run(db)
        db.retract_facts("edge", [(0, 2)])
        result = engine.run(db)
        assert result.maintained
        grad_warm = engine.backward(db, "path", {(0, 2): 1.0})
        cold_engine, cold_db = cold_tc(
            [(0, 1), (1, 2)], "diff-minmaxprob", [0.9, 0.4]
        )
        grad_cold = cold_engine.backward(cold_db, "path", {(0, 2): 1.0})
        # Warm keeps the retracted fact's id slot; map by position.
        np.testing.assert_allclose(grad_warm[:2], grad_cold)
        assert grad_warm[2] == 0.0  # the retracted fact gets no gradient

    def test_maintain_is_cheaper_than_cold_on_long_chains(self):
        # The performance rationale: maintaining a small retraction must
        # not replay the whole iteration ladder a cold run climbs.
        chain = [(i, i + 1) for i in range(40)]
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", chain)
        cold = engine.run(db)
        db.retract_facts("edge", [(39, 40)])  # clip the chain's tail
        warm = engine.run(db)
        assert warm.maintained
        assert warm.iterations < cold.iterations / 2


class TestMaintainFallbacks:
    def test_negation_falls_back_and_stays_correct(self):
        source = """
        rel reach(x) :- start(x) or (reach(y) and e(y, x)).
        rel unreached(x) :- node(x), not reach(x).
        """
        engine = LobsterEngine(source)
        db = engine.create_database()
        db.add_facts("start", [(0,)])
        db.add_facts("e", [(0, 1), (1, 2)])
        db.add_facts("node", [(0,), (1,), (2,)])
        engine.run(db)
        assert db.result("unreached").n_rows == 0
        db.retract_facts("e", [(1, 2)])
        result = engine.run(db)
        assert not result.maintained
        assert "negation" in result.maintain_fallback
        # Retraction ADDED a negated conclusion — exactly what DRed
        # cannot express and the fallback must.
        assert sorted(db.result("unreached").rows()) == [(2,)]

    def test_non_idempotent_oplus_falls_back(self):
        engine = LobsterEngine("rel q(x) :- a(x) or b(x).", provenance="addmultprob")
        db = engine.create_database()
        db.add_facts("a", [(1,)], probs=[0.3])
        db.add_facts("b", [(1,)], probs=[0.4])
        engine.run(db)
        db.retract_facts("b", [(1,)])
        result = engine.run(db)
        assert not result.maintained
        assert "idempotent" in result.maintain_fallback
        assert engine.query_probs(db, "q")[(1,)] == pytest.approx(0.3)

    def test_sharded_engine_falls_back_and_matches_cold(self):
        engine = LobsterEngine(TC, shards=2)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2), (2, 3), (0, 3)])
        engine.run(db)
        db.retract_facts("edge", [(1, 2)])
        result = engine.run(db)
        assert not result.maintained
        assert "sharded" in result.maintain_fallback
        assert result.shards == 2
        _, cold_db = cold_tc([(0, 1), (2, 3), (0, 3)])
        assert sorted(db.result("path").rows()) == sorted(
            cold_db.result("path").rows()
        )

    def test_explicit_maintain_on_unsupported_program_raises(self):
        engine = LobsterEngine(
            "rel ok(x) :- v(x), not bad(x).", provenance="unit"
        )
        db = engine.create_database()
        db.add_facts("v", [(1,)])
        db.add_facts("bad", [(2,)])
        engine.run(db)
        db.retract_facts("bad", [(2,)])
        with pytest.raises(RetractionUnsupportedError, match="negation"):
            engine.run(db, maintain=True)

    def test_explicit_maintain_without_retractions_raises(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1)])
        engine.run(db)
        with pytest.raises(RetractionUnsupportedError, match="no retractions"):
            engine.run(db, maintain=True)

    def test_maintain_false_forces_checkpointed_recompute(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        engine.run(db)
        db.retract_facts("edge", [(1, 2)])
        result = engine.run(db, maintain=False)
        assert not result.maintained
        assert "maintain=False" in result.maintain_fallback
        assert sorted(db.result("path").rows()) == [(0, 1)]

    def test_retraction_before_first_run_is_cold(self):
        engine = LobsterEngine(TC)
        db = engine.create_database()
        db.add_facts("edge", [(0, 1), (1, 2)])
        db.finalize()
        db.retract_facts("edge", [(1, 2)])
        result = engine.run(db)
        assert not result.maintained
        assert sorted(db.result("path").rows()) == [(0, 1)]

"""The §4/§5.3 optimizations: semantics preserved, profiles differ."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DeviceOutOfMemory, LobsterEngine, OptimizationConfig, VirtualDevice
from repro.apm import instructions as I
from repro.apm.optimizer import optimize
from repro.apm.schedule import plan_transfers
from tests.conftest import TC_PROGRAM, random_digraph

MULTI_STRATUM = """
rel tc(x, y) :- e(x, y) or (tc(x, z) and e(z, y)).
rel pair(x, y) :- tc(x, y), tc(y, x).
rel flagged(x) :- pair(x, y), mark(y).
query flagged
"""


def run_with(edges, config: OptimizationConfig):
    engine = LobsterEngine(TC_PROGRAM, provenance="unit", optimizations=config)
    db = engine.create_database()
    db.add_facts("edge", edges)
    result = engine.run(db)
    return engine, db, result


class TestAblationSemantics:
    @pytest.mark.parametrize(
        "config",
        [
            OptimizationConfig(),
            OptimizationConfig.none(),
            OptimizationConfig(buffer_reuse=False),
            OptimizationConfig(static_indices=False),
            OptimizationConfig(stratum_scheduling=False),
            OptimizationConfig(apm_passes=False),
        ],
    )
    def test_results_identical_under_all_configs(self, config, rng):
        edges = random_digraph(rng, 30, 80)
        _, db_opt, _ = run_with(edges, OptimizationConfig())
        _, db, _ = run_with(edges, config)
        assert set(db.result("path").rows()) == set(db_opt.result("path").rows())


class TestStaticIndices:
    def test_static_key_assigned_to_edb_side(self, rng):
        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        builds = [
            instr
            for stratum in engine.apm.strata
            for rule in stratum.rules
            for variant in rule.variants
            for instr in variant.instructions
            if isinstance(instr, I.Build)
        ]
        assert any(b.static_key for b in builds)

    def test_reuse_reduces_build_work(self, rng):
        edges = random_digraph(rng, 40, 120)
        _, _, with_static = run_with(edges, OptimizationConfig())
        _, _, without = run_with(edges, OptimizationConfig(static_indices=False))
        assert (
            with_static.profile.reused_allocations
            > without.profile.reused_allocations
        )


class TestBufferReuse:
    def test_alloc_overhead_counted_when_disabled(self, rng):
        edges = random_digraph(rng, 30, 90)
        _, _, result = run_with(edges, OptimizationConfig(buffer_reuse=False))
        assert result.simulated_overhead_seconds > 0
        _, _, reused = run_with(edges, OptimizationConfig())
        assert reused.profile.reused_allocations > 0


class TestStratumScheduling:
    def test_optimized_plan_fewer_transfers(self):
        engine = LobsterEngine(MULTI_STRATUM, provenance="unit")
        optimized = plan_transfers(engine.apm, True)
        naive = plan_transfers(engine.apm, False)
        assert len(naive) == len(engine.apm.strata)
        assert len(optimized) <= len(naive)

    def test_scheduling_reduces_transfer_time(self, rng):
        edges = random_digraph(rng, 30, 80)
        engine_on = LobsterEngine(MULTI_STRATUM, provenance="unit")
        db = engine_on.create_database()
        db.add_facts("e", edges)
        db.add_facts("mark", [(n,) for n in range(5)])
        on = engine_on.run(db)

        engine_off = LobsterEngine(
            MULTI_STRATUM,
            provenance="unit",
            optimizations=OptimizationConfig(stratum_scheduling=False),
        )
        db2 = engine_off.create_database()
        db2.add_facts("e", edges)
        db2.add_facts("mark", [(n,) for n in range(5)])
        off = engine_off.run(db2)

        assert on.profile.transfer_seconds < off.profile.transfer_seconds
        assert set(db.result("flagged").rows()) == set(db2.result("flagged").rows())


class TestApmPasses:
    def test_dce_removes_instructions(self):
        engine = LobsterEngine(MULTI_STRATUM, provenance="unit")
        unoptimized = LobsterEngine(
            MULTI_STRATUM,
            provenance="unit",
            optimizations=OptimizationConfig(apm_passes=False),
        )
        assert engine.apm.instruction_count() <= unoptimized.apm.instruction_count()

    def test_optimize_idempotent(self):
        engine = LobsterEngine(TC_PROGRAM, provenance="unit")
        count = engine.apm.instruction_count()
        optimize(engine.apm)
        assert engine.apm.instruction_count() == count


class TestDeviceOom:
    def test_capacity_exceeded_raises(self, rng):
        edges = random_digraph(rng, 60, 400)
        device = VirtualDevice(capacity_bytes=50_000)
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", device=device)
        db = engine.create_database()
        db.add_facts("edge", edges)
        with pytest.raises(DeviceOutOfMemory):
            engine.run(db)

    def test_large_capacity_fits(self, rng):
        edges = random_digraph(rng, 20, 40)
        device = VirtualDevice(capacity_bytes=200_000_000)
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", device=device)
        db = engine.create_database()
        db.add_facts("edge", edges)
        engine.run(db)
        assert db.result("path").n_rows > 0

    def test_peak_arena_tracked(self, rng):
        edges = random_digraph(rng, 20, 40)
        device = VirtualDevice(capacity_bytes=200_000_000)
        engine = LobsterEngine(TC_PROGRAM, provenance="unit", device=device)
        db = engine.create_database()
        db.add_facts("edge", edges)
        result = engine.run(db)
        assert result.profile.peak_arena_bytes > 0

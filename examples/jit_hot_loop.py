"""The trace-JIT on a hot serving loop: record once, run fused.

One compiled transitive-closure program serves a stream of same-shaped
probabilistic graphs.  The first runs execute interpreted (one kernel
launch per APM instruction) while the JIT counts them as warm; the next
run is recorded and compiled into fused kernels — one launch per join
region, filters and projections pipelined into the probe — and every
run after that replays the code cache.  A final request with a drifted
column dtype trips a guard and falls back to the interpreter, with the
reason recorded instead of a wrong answer.

Run:  PYTHONPATH=src python examples/jit_hot_loop.py
"""

import numpy as np

from repro import JitConfig, LobsterEngine, ProgramCache

PROGRAM = """
rel path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
query path
"""


def request_edges(seed):
    """One request's graph: same shape, different contents."""
    rng = np.random.default_rng(seed)
    edges = sorted(
        {
            (int(a), int(b))
            for a, b in rng.integers(0, 60, size=(150, 2))
            if a != b
        }
    )
    probs = (0.4 + 0.6 * rng.random(len(edges))).tolist()
    return edges, probs


cache = ProgramCache()
engine = LobsterEngine(
    PROGRAM, provenance="minmaxprob", cache=cache, jit=JitConfig(hot_runs=2)
)
reference = LobsterEngine(PROGRAM, provenance="minmaxprob", cache=ProgramCache())

print("=== the hot loop: warm -> record -> fused ===")
for i in range(6):
    edges, probs = request_edges(seed=i)
    db = engine.create_database()
    db.add_facts("edge", edges, probs)
    result = engine.run(db)

    ref_db = reference.create_database()
    ref_db.add_facts("edge", edges, probs)
    ref = reference.run(ref_db)

    jit_tab, ref_tab = db.result("path"), ref_db.result("path")
    identical = jit_tab.n_rows == ref_tab.n_rows and all(
        np.array_equal(a, b)
        for a, b in zip(
            jit_tab.columns + [jit_tab.tags], ref_tab.columns + [ref_tab.tags]
        )
    )
    mode = (
        "fused"
        if result.jit
        else "record" if result.jit_recorded else "interpret"
    )
    print(
        f"run {i}: {mode:9s}  launches {result.profile.kernel_launches:3d} "
        f"(interp {ref.profile.kernel_launches:3d})  "
        f"modeled {result.profile.busy_seconds * 1e3:.3f}ms "
        f"(interp {ref.profile.busy_seconds * 1e3:.3f}ms)  "
        f"bitwise-equal={identical}"
    )
    assert identical

print()
print("=== code-cache accounting ===")
stats = cache.stats
print(
    f"trace lookups {stats.trace_lookups}: "
    f"{stats.trace_misses} misses (warm + record), "
    f"{stats.trace_hits} hits, {stats.trace_deopts} deopts"
)

print()
print("=== a trace the JIT refuses to fuse ===")
# Under addmultprob, duplicate tags merge with ⊕ = +, which is not
# order-insensitive: fusing would reassociate the sums the interpreter
# materializes in a fixed order.  The JIT records the trace, marks it
# unsupported, and every hot run deopts with the reason — a slower
# right answer instead of a faster wrong one.
counting = LobsterEngine(
    PROGRAM, provenance="addmultprob", cache=ProgramCache(), jit=JitConfig(hot_runs=1)
)
dag = [(i, i + 1) for i in range(12)] + [(i, i + 2) for i in range(10)]
for _ in range(3):
    db = counting.create_database()
    db.add_facts("edge", dag, [0.5] * len(dag))
    result = counting.run(db)
print(f"jit={result.jit}  deopt reason: {result.jit_deopt}")
print(f"still correct: {db.result('path').n_rows} path rows derived")

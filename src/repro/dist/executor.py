"""Sharded semi-naive execution across a pool of virtual devices.

One compiled :class:`~repro.apm.compiler.ApmProgram` runs on ``N``
:class:`~repro.gpu.device.VirtualDevice`\\ s under a *partitioned
frontier, replicated closure* scheme — the distributed semi-naive
evaluation used by parallel Datalog engines with broadcast join sides:

* every relation's rows are hash-assigned to exactly one **owner** shard
  (:mod:`repro.dist.partition`);
* each fix-point iteration, every shard executes the stratum's rule
  variants with its ``recent`` frontier restricted to the rows it owns —
  so the probe side of every recursive join, and hence the per-shard
  modeled kernel time, shrinks roughly 1/N;
* the per-shard deltas are **shuffled** to their owner shards
  (:mod:`repro.dist.exchange`), where duplicate derivations from
  different shards are ⊕-combined once (``sort``/``unique⟨⊕⟩``);
* the owners' merged deltas are **all-gathered** so every shard advances
  an identical replica of the closure, keeping build sides local.

Because each shard applies the *same* global deduplicated delta through
the same :meth:`~repro.runtime.relation.StoredRelation.advance` kernels,
shard state never diverges, and the final result matches a single-device
run row-for-row — and tag-for-tag for every commutative ⊕ (all shipped
semirings; floating-point ``addmultprob`` sums may reassociate).

Flat (non-recursive) rules scan only replicated ``full`` partitions, so
running them everywhere would derive each row N times; they are instead
round-robined across shards by rule index.

Negation is not sharded: stratified negation is only sound against
complete relations, and the engine falls back to single-device execution
for such programs rather than approximating (mirroring PR 1's
incremental fallback contract).
"""

from __future__ import annotations

import numpy as np

from .exchange import ExchangeOperator
from .partition import HashPartitioner, ShardMap
from ..apm.compiler import ApmProgram, CompiledStratum
from ..apm.interpreter import DEFAULT_MAX_ITERATIONS, ApmInterpreter
from ..apm.schedule import cached_plan
from ..errors import ExecutionError, LobsterError, RetractionUnsupportedError
from ..gpu.device import VirtualDevice
from ..provenance.base import Provenance
from ..runtime.database import Database
from ..runtime.relation import StoredRelation, dedup_table
from ..runtime.table import Table
from ..stats.feedback import PlanFeedback


class ShardView:
    """One shard's view of the database: replicated relation storage with
    shard-local frontier masks.  Duck-types the small surface of
    :class:`~repro.runtime.database.Database` the interpreter touches."""

    def __init__(self, schemas: dict, provenance: Provenance):
        self.schemas = schemas
        self.provenance = provenance
        self.relations: dict[str, StoredRelation] = {}

    def relation(self, name: str) -> StoredRelation:
        rel = self.relations.get(name)
        if rel is None:
            rel = StoredRelation(name, self.schemas[name], self.provenance)
            self.relations[name] = rel
        return rel

    def total_bytes(self) -> int:
        return sum(rel.nbytes() for rel in self.relations.values())


class ShardedExecutor:
    """Executes APM programs across a pool of shard devices."""

    def __init__(
        self,
        devices: list[VirtualDevice],
        enable_static_reuse: bool = True,
        enable_buffer_reuse: bool = True,
        enable_stratum_scheduling: bool = True,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        shard_map: ShardMap | None = None,
    ):
        if len(devices) < 1:
            raise ValueError("ShardedExecutor needs at least one device")
        if shard_map is not None and shard_map.n_shards != len(devices):
            raise ValueError(
                f"shard map covers {shard_map.n_shards} shards but "
                f"{len(devices)} devices were supplied"
            )
        self.devices = devices
        self.partitioner = shard_map or HashPartitioner(len(devices))
        self.exchange = ExchangeOperator(self.partitioner, devices)
        self.enable_static_reuse = enable_static_reuse
        self.enable_buffer_reuse = enable_buffer_reuse
        self.enable_stratum_scheduling = enable_stratum_scheduling
        self.max_iterations = max_iterations
        self.interpreters = [self._make_interpreter(device) for device in devices]
        self.iterations_run = 0
        self.reshards_applied = 0
        #: Optional mid-fixpoint reshard probe: called as
        #: ``hook(executor, stratum, iteration)`` at the top of every
        #: fix-point iteration; returning a :class:`ShardMap` re-homes
        #: the in-flight frontier onto the new shard set via
        #: :meth:`apply_reshard`, returning None continues as-is.
        self.reshard_hook = None
        self._views: list[ShardView] = []
        self._shard_feedbacks: list[PlanFeedback] | None = None

    def _make_interpreter(self, device: VirtualDevice) -> ApmInterpreter:
        return ApmInterpreter(
            device,
            enable_static_reuse=self.enable_static_reuse,
            enable_buffer_reuse=self.enable_buffer_reuse,
            enable_stratum_scheduling=self.enable_stratum_scheduling,
            max_iterations=self.max_iterations,
        )

    @property
    def n_shards(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------

    def run(
        self, program: ApmProgram, database: Database, feedback=None
    ) -> None:
        """Execute ``program`` to fix point against ``database``.

        The database's relations are replaced by the (identical-on-all-
        shards) sharded result, so downstream queries, probabilities, and
        gradients read it exactly as after a single-device run.

        ``feedback`` (a :class:`~repro.stats.PlanFeedback`) receives the
        per-shard derived-row counts from the exchange loop plus each
        interpreter's per-rule output cardinalities — the sharded half of
        the adaptive planner's estimate-vs-observation loop.
        """
        if program.has_negation:
            raise LobsterError(
                "sharded execution does not support negation (owner-merge "
                "over partial frontiers cannot retract); run single-device"
            )
        if database.has_pending_retractions:
            # The engine applies retractions before dispatching here (the
            # documented fallback: retractions edit the fact log, then the
            # query reruns cold across the shards — doom frontiers are
            # never routed through the exchange path).
            raise RetractionUnsupportedError(
                "sharded execution received staged retractions; apply them "
                "via Database.rebuild() (LobsterEngine.run does this) first"
            )
        database.finalize()
        self._views = self._make_views(program, database)
        transfers = cached_plan(program, self.enable_stratum_scheduling)
        # Each shard records into a private feedback: a shard's largest
        # firing is ~1/N of the rule's global output, so comparing it
        # against the whole-program estimates would inflate drift ~Nx
        # and trigger spurious re-planning.  Per-shard actuals are
        # summed into the caller's feedback after the run.
        self._shard_feedbacks = (
            [PlanFeedback() for _ in self.interpreters]
            if feedback is not None
            else None
        )
        for interpreter, local in zip(
            self.interpreters, self._shard_feedbacks or [None] * self.n_shards
        ):
            interpreter.feedback = local
        try:
            for index, stratum in enumerate(program.strata):
                # Per-shard stratum spans (no-ops unless the engine
                # attached tracers): each shard's lane shows its own
                # stratum timeline on its own busy clock.  A mid-stratum
                # reshard may swap the interpreter list, so the spans are
                # finished against the set that opened them.
                openers = list(self.interpreters)
                opened_spans = [
                    interpreter._start_stratum_span(index, stratum)
                    for interpreter in openers
                ]
                try:
                    for shard in range(self.n_shards):
                        self.interpreters[shard]._charge_transfers(
                            transfers.get(index, ()), self._views[shard], to_device=True
                        )
                        self.interpreters[shard].begin_stratum()
                    self._run_stratum(stratum, program, feedback)
                    for shard in range(self.n_shards):
                        self.interpreters[shard]._charge_transfers(
                            transfers.get(index, ()), self._views[shard], to_device=False
                        )
                finally:
                    for interpreter, opened in zip(openers, opened_spans):
                        interpreter._finish_stratum_span(opened)
        finally:
            for interpreter in self.interpreters:
                interpreter.feedback = None
        if feedback is not None and self._shard_feedbacks is not None:
            # Sum the shards' per-rule peaks (the per-shard maxima may
            # come from different iterations, so this upper-bounds the
            # true global peak firing — the right bias for a drift
            # signal that must not under-report).
            shard_feedbacks = self._shard_feedbacks
            keys = {key for local in shard_feedbacks for key in local.rule_actuals}
            for key in keys:
                feedback.record_rule(
                    key,
                    sum(local.rule_actuals.get(key, 0) for local in shard_feedbacks),
                )
            for local in shard_feedbacks:
                for name, rows in local.instruction_rows.items():
                    feedback.record_instruction(name, rows)
        # Shard 0's replica is the authoritative result (all identical).
        for name, rel in self._views[0].relations.items():
            database.relations[name] = rel

    # ------------------------------------------------------------------

    def _make_views(self, program: ApmProgram, database: Database) -> list[ShardView]:
        """Per-shard views sharing the master's (immutable) EDB tables.

        Sharing the initial ``full`` tables is safe: ``advance`` never
        mutates a table in place — it always builds fresh arrays.
        """
        views = []
        for _ in range(self.n_shards):
            view = ShardView(database.schemas, database.provenance)
            views.append(view)
        for name, rel in database.relations.items():
            for index, view in enumerate(views):
                clone = StoredRelation(name, rel.dtypes, database.provenance)
                clone.full = rel.full
                # Preserve the mask state (stratum seeding overwrites it
                # for the predicates it touches): relations no stratum
                # derives — plain EDB inputs — must come out of a sharded
                # run exactly as a single-device run leaves them.
                clone.recent_mask = rel.recent_mask.copy()
                clone.changed_mask = rel.changed_mask.copy()
                if index == 0:
                    # Shard 0's replica becomes the database's relation
                    # after the run, so it inherits (moves, not copies —
                    # exactly one owner) the master's incremental stats:
                    # its advances keep them current, and an adaptive
                    # engine's next stats_catalog() call stays O(1)
                    # instead of re-summarizing every relation.
                    clone._stats = rel._stats
                    rel._stats = None
                view.relations[name] = clone
        return views

    def apply_reshard(self, shard_map: ShardMap, stratum=None) -> None:
        """Re-home the in-flight run onto a new :class:`ShardMap`,
        growing or shrinking the device pool to match.

        Replication makes this cheap and exact: every shard holds an
        identical copy of ``full`` and ``changed`` state (each applied
        the same global deltas), and only the ``recent`` frontier is
        partitioned.  Re-homing therefore unions the per-shard frontier
        masks back into the global frontier and re-partitions it under
        the new map; no closure rows move at all.  (The *modeled* cost of
        re-homing — sizing a shard's replica onto a fresh device — is
        priced and charged by the serve-layer planner, which decides
        whether a reshard pays for itself before ever calling this.)

        Growth keeps the existing devices (busy clocks and arenas carry
        over) and appends fresh ones cloned from the first device's cost
        parameters; shrink drops the suffix.  The executor's ``devices``
        list is resized in place, so an engine that handed its
        ``shard_devices`` list over observes the change.
        """
        if not self._views:
            raise LobsterError(
                "apply_reshard needs an in-flight run (no shard views); "
                "to change the map between runs build a new executor"
            )
        old_views = self._views
        old_n = self.n_shards
        n = shard_map.n_shards
        if n > old_n:
            template = self.devices[0]
            for _ in range(old_n, n):
                device = VirtualDevice(
                    capacity_bytes=template.capacity_bytes,
                    bandwidth_bytes_per_s=template.bandwidth_bytes_per_s,
                    transfer_latency_s=template.transfer_latency_s,
                    reuse_buffers=template.reuse_buffers,
                    exchange_bandwidth_bytes_per_s=template.exchange_bandwidth_bytes_per_s,
                    exchange_latency_s=template.exchange_latency_s,
                )
                self.devices.append(device)
                interpreter = self._make_interpreter(device)
                if self._shard_feedbacks is not None:
                    local = PlanFeedback()
                    self._shard_feedbacks.append(local)
                    interpreter.feedback = local
                self.interpreters.append(interpreter)
        elif n < old_n:
            for interpreter in self.interpreters[n:]:
                interpreter.feedback = None
            del self.devices[n:]
            del self.interpreters[n:]
        self.partitioner = shard_map
        self.exchange = ExchangeOperator(shard_map, self.devices)
        stratum_predicates = (
            set(stratum.predicates) if stratum is not None else set()
        )
        provenance = old_views[0].provenance
        new_views = [
            ShardView(old_views[0].schemas, provenance) for _ in range(n)
        ]
        for name, rel in old_views[0].relations.items():
            # Union the frontier across the old shard set (a partition
            # for in-stratum predicates, identical replicas otherwise —
            # either way the union is the global mask).
            union_recent = rel.recent_mask.copy()
            union_changed = rel.changed_mask.copy()
            for view in old_views[1:]:
                other = view.relations.get(name)
                if other is not None:
                    union_recent |= other.recent_mask
                    union_changed |= other.changed_mask
            owners = (
                shard_map.owners(rel.full, name)
                if name in stratum_predicates
                else None
            )
            for index, view in enumerate(new_views):
                clone = StoredRelation(name, rel.dtypes, provenance)
                clone.full = rel.full
                clone.changed_mask = union_changed.copy()
                if owners is None:
                    clone.recent_mask = union_recent.copy()
                else:
                    clone.recent_mask = union_recent & (owners == index)
                if index == 0:
                    clone._stats = rel._stats
                    rel._stats = None
                view.relations[name] = clone
        self._views = new_views
        self.reshards_applied += 1

    def _exchange_snapshot(self) -> list[tuple[float, int]] | None:
        """Per-device (exchange_seconds, exchange_bytes) before a
        collective, or None when no shard is tracing."""
        if not any(
            interpreter.tracer.enabled and interpreter.trace_parent is not None
            for interpreter in self.interpreters
        ):
            return None
        return [
            (device.profile.exchange_seconds, device.profile.exchange_bytes)
            for device in self.devices
        ]

    def _trace_exchange(
        self,
        name: str,
        predicate: str,
        iteration: int,
        before: list[tuple[float, int]] | None,
    ) -> None:
        """Spans for a collective's per-device cost: the exchange model
        charged each sending device's busy clock during the call, so the
        span is the [end - charged, end] window on that shard's lane."""
        if before is None:
            return
        for shard, interpreter in enumerate(self.interpreters):
            if not (
                interpreter.tracer.enabled and interpreter.trace_parent is not None
            ):
                continue
            profile = self.devices[shard].profile
            charged_s = profile.exchange_seconds - before[shard][0]
            if charged_s <= 0.0:
                continue
            end_s = interpreter.trace_clock()
            span = interpreter.tracer.start(
                name,
                t=end_s - charged_s,
                parent=interpreter.trace_parent,
                predicate=predicate,
                n=iteration,
                bytes=profile.exchange_bytes - before[shard][1],
            )
            interpreter.tracer.finish(span, end_s)

    def _run_stratum(
        self,
        stratum: CompiledStratum,
        program: ApmProgram,
        feedback=None,
    ) -> None:
        views = self._views
        n = self.n_shards
        provenance = views[0].provenance
        # Seed: full frontier, partitioned by ownership.
        for predicate in stratum.predicates:
            owners = self.partitioner.owners(
                views[0].relation(predicate).full, predicate
            )
            for shard in range(n):
                rel = views[shard].relation(predicate)
                rel.mark_all_recent()
                rel.recent_mask &= owners == shard

        iteration = 0
        while True:
            iteration += 1
            self.iterations_run += 1
            if self.reshard_hook is not None:
                new_map = self.reshard_hook(self, stratum, iteration)
                if new_map is not None:
                    self.apply_reshard(new_map, stratum)
                    views = self._views
            n = self.n_shards
            shard_deltas: list[dict[str, list[Table]]] = []
            for shard in range(n):
                interpreter = self.interpreters[shard]
                opened = None
                if interpreter.tracer.enabled and interpreter.trace_parent is not None:
                    span = interpreter.tracer.start(
                        "iteration",
                        t=interpreter.trace_clock(),
                        parent=interpreter.trace_parent,
                        n=iteration,
                    )
                    opened = (span, interpreter.trace_parent)
                    interpreter.trace_parent = span
                deltas: dict[str, list[Table]] = {p: [] for p in stratum.predicates}
                try:
                    for rule_index, rule in enumerate(stratum.rules):
                        if rule.edb_only:
                            # Flat rules scan replicated FULL partitions only;
                            # run each on one shard (round-robin) or every
                            # shard would derive its output N times.
                            if iteration > 1 or rule_index % n != shard:
                                continue
                        for variant in rule.variants:
                            interpreter._execute_variant(
                                variant, views[shard], deltas, iteration
                            )
                finally:
                    interpreter._finish_stratum_span(opened)
                shard_deltas.append(deltas)

            frontier = 0
            for predicate in stratum.predicates:
                dtypes = program.schemas[predicate]
                local = [
                    Table.concat(deltas[predicate], dtypes, provenance)
                    for deltas in shard_deltas
                ]
                if feedback is not None:
                    for shard, table in enumerate(local):
                        if table.n_rows:
                            feedback.record_shard(shard, table.n_rows)
                # Route every derived row to its owner; ⊕-merge there.
                before = self._exchange_snapshot()
                owned = self.exchange.shuffle(
                    local, dtypes, provenance, predicate=predicate
                )
                self._trace_exchange(
                    "exchange.shuffle", predicate, iteration, before
                )
                merged = [dedup_table(table, provenance) for table in owned]
                # Owners broadcast their merged partitions; every shard
                # folds the identical global delta into its replica.
                before = self._exchange_snapshot()
                global_delta = self.exchange.all_gather(merged, dtypes, provenance)
                self._trace_exchange(
                    "exchange.all_gather", predicate, iteration, before
                )
                advanced = 0
                for shard in range(n):
                    advanced = views[shard].relation(predicate).advance(global_delta)
                frontier += advanced
                if not stratum.recursive:
                    continue  # frontier unused: the loop breaks below
                # Re-partition the new frontier by ownership.  Only the
                # frontier rows are hashed (identical on every replica),
                # not the whole growing closure — total hashing work per
                # stratum stays proportional to rows derived, not
                # O(closure x iterations).
                rel0 = views[0].relation(predicate)
                frontier_rows = np.flatnonzero(rel0.recent_mask)
                owners = self.partitioner.owners(
                    rel0.full.take(frontier_rows), predicate
                )
                for shard in range(n):
                    rel = views[shard].relation(predicate)
                    mask = np.zeros(rel.full.n_rows, dtype=bool)
                    mask[frontier_rows[owners == shard]] = True
                    rel.recent_mask = mask

            if not stratum.recursive or frontier == 0:
                break
            if iteration >= self.max_iterations:
                raise ExecutionError(
                    f"stratum over {stratum.predicates} exceeded "
                    f"{self.max_iterations} iterations without saturating"
                )

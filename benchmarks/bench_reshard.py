"""Skew-aware elastic resharding — strong scaling on a Zipf-skewed TC.

A static row-hash partitioner cannot react to key skew: its shard set is
fixed at provisioning time and its row basis ignores keys entirely.  The
:class:`~repro.serve.elastic.ElasticController` starts from the same
2-shard provisioning, observes the served databases' hot-key reports,
and — when the :class:`~repro.dist.ReshardPlanner`'s priced payback
beats the migration cost — grows the shard set and splits hot keys
across owner subsets.

Workload: :func:`~repro.workloads.graphs.zipf_overlap`, a block-overlap
DAG whose edge reuse makes transitive closure kernel-bound while the
rank-1 source concentrates a Zipf head of the derived mass on one join
key.  The sweep reports the static hash partitioner at 1/2/4/8 shards,
a keyed 8-shard map *without* splits (isolating what hot-key splitting
buys), and the elastic configuration.

Shape asserted (full sizes): elastic beats the static hash partitioner
at matched 2-shard provisioning by >= 1.5x modeled busy-seconds, never
loses at any static shard count, migrates exactly when payback exceeds
migration cost (a zero-payback controller declines every plan), and
never loses on the uniform (skew-free) variant of the same workload.
``LOBSTER_RESHARD_TINY=1`` shrinks the graph to smoke-test the elastic
paths (CI); latency floors dominate tiny deltas, so the ratio
assertions are skipped there — result identity and cost-gating are
still checked.
"""

from __future__ import annotations

import os

import pytest

from repro import ElasticController, LobsterEngine, ShardMap
from repro.workloads.analytics import TRANSITIVE_CLOSURE
from repro.workloads.graphs import zipf_overlap

from _harness import print_table, profile_metrics, record, report

SUITE = "reshard"

TINY = bool(os.environ.get("LOBSTER_RESHARD_TINY"))
STATIC_SHARDS = [1, 2, 4, 8]
#: Both systems are provisioned with this many shards; only the elastic
#: one may grow past it.
PROVISIONED = 2
MAX_SHARDS = 8
#: Observed runs a migration must pay for itself within.
HORIZON_RUNS = 16
#: Stored-mass fraction above which a key counts as hot (the workload's
#: rank-2 source sits just above 1/64; rank-3 just below).
MASS_THRESHOLD = 1 / 64
WARMUP_RUNS = 4

GRAPH = (
    dict(n_blocks=12, mids=6, sinks=10, n_sources=64)
    if TINY
    else dict(n_blocks=64, mids=24, sinks=48, n_sources=512)
)


def skewed_edges():
    return zipf_overlap(**GRAPH)


def uniform_edges():
    return zipf_overlap(**GRAPH, skew=0.0)


def run_once(engine, edges):
    db = engine.create_database()
    db.add_facts("edge", edges)
    result = engine.run(db)
    return result, db.result("path").n_rows


def run_static(shards: int, edges):
    if shards == 1:
        engine = LobsterEngine(TRANSITIVE_CLOSURE, provenance="unit")
    else:
        engine = LobsterEngine(
            TRANSITIVE_CLOSURE, provenance="unit", shards=shards
        )
    return run_once(engine, edges)


def run_keyed_nosplit(shards: int, edges):
    engine = LobsterEngine(
        TRANSITIVE_CLOSURE,
        provenance="unit",
        shard_map=ShardMap(shards, key_columns={"path": 0}),
    )
    return run_once(engine, edges)


def run_elastic(edges, horizon_runs: int = HORIZON_RUNS):
    """Provision PROVISIONED keyed shards, let the controller observe a
    few served runs (migrating when the planner prices a win), then
    measure the steady state."""
    engine = LobsterEngine(
        TRANSITIVE_CLOSURE,
        provenance="unit",
        shard_map=ShardMap(PROVISIONED, key_columns={"path": 0}),
    )
    controller = ElasticController(
        engine,
        max_shards=MAX_SHARDS,
        horizon_runs=horizon_runs,
        mass_threshold=MASS_THRESHOLD,
    )
    for _ in range(WARMUP_RUNS):
        db = engine.create_database()
        db.add_facts("edge", edges)
        result = engine.run(db)
        controller.observe(db, result)
        controller.maybe_reshard()
    result, n_rows = run_once(engine, edges)
    return result, n_rows, controller


@pytest.fixture(scope="module")
def results():
    skew = skewed_edges()
    uniform = uniform_edges()
    out = {"skew": {}, "uniform": {}}

    for shards in STATIC_SHARDS:
        result, n_rows = run_static(shards, skew)
        out["skew"][f"static{shards}"] = (result, n_rows)
    result, n_rows = run_keyed_nosplit(MAX_SHARDS, skew)
    out["skew"]["keyed8-nosplit"] = (result, n_rows)
    result, n_rows, controller = run_elastic(skew)
    out["skew"]["elastic"] = (result, n_rows)
    out["controller"] = controller

    for shards in (PROVISIONED, MAX_SHARDS):
        result, n_rows = run_static(shards, uniform)
        out["uniform"][f"static{shards}"] = (result, n_rows)
    result, n_rows, uniform_controller = run_elastic(uniform)
    out["uniform"]["elastic"] = (result, n_rows)
    out["uniform_controller"] = uniform_controller

    # The zero-horizon controller prices every plan at zero payback: it
    # must decline them all and keep the provisioned layout.
    _, _, gated = run_elastic(skew, horizon_runs=0)
    out["gated_controller"] = gated

    for workload in ("skew", "uniform"):
        for name, (result, n_rows) in out[workload].items():
            attrs = dict(shards=result.shards, rows=n_rows, tiny=TINY)
            if name == "elastic":
                ctrl = out[
                    "controller" if workload == "skew" else "uniform_controller"
                ]
                shard_map = ctrl.engine.shard_map
                attrs["migrations"] = sum(p.migrate for p in ctrl.plans)
                attrs["splits"] = sum(
                    len(v) for v in shard_map.splits.values()
                )
            report(
                SUITE, f"{workload}/{name}",
                samples=[result.simulated_parallel_seconds],
                unit="modeled_s",
                metrics=profile_metrics(result.profile),
                **attrs,
            )
    return out


def _table_rows(cells, baseline_name):
    base = cells[baseline_name][0].simulated_parallel_seconds
    rows = []
    for name, (result, n_rows) in cells.items():
        profile = result.profile  # merged across the shard pool
        sim = result.simulated_parallel_seconds
        rows.append(
            [
                name,
                result.shards,
                n_rows,
                f"{sim * 1e3:.3f}ms",
                f"{profile.kernel_seconds * 1e3:.3f}ms",
                f"{profile.exchange_seconds * 1e3:.3f}ms",
                f"{base / sim:.2f}x" if sim else "-",
            ]
        )
    return rows


HEADER = [
    "config",
    "shards",
    "rows",
    "sim makespan",
    "kernel (sum)",
    "exchange (sum)",
    f"speedup vs static{PROVISIONED}",
]


def test_reshard_skewed_curve(results, benchmark):
    def check():
        skew = results["skew"]
        print_table(
            "Elastic resharding — Zipf-skewed TC"
            + (" (tiny)" if TINY else ""),
            HEADER,
            _table_rows(skew, f"static{PROVISIONED}"),
        )

        # Correctness at every configuration: identical result size
        # (bitwise identity across reshard schedules is pinned by the
        # hypothesis suite in tests/test_dist.py).
        assert len({n_rows for _, n_rows in skew.values()}) == 1

        controller = results["controller"]
        applied = [plan for plan in controller.plans if plan.migrate]
        final_map = controller.engine.shard_map
        # The controller scaled out and split the workload's hot key.
        assert applied, "elastic controller never migrated under skew"
        assert controller.engine.shards > PROVISIONED
        # Migration triggers only when priced payback beats the shuffle
        # cost of moving the rows.
        for plan in applied:
            assert plan.payback_s > plan.migration_s

        if not TINY:
            assert final_map.splits.get("path"), "hot key was never split"
            elastic = skew["elastic"][0].simulated_parallel_seconds
            static2 = skew[f"static{PROVISIONED}"][0].simulated_parallel_seconds
            # Headline: >= 1.5x over the static hash partitioner at
            # matched provisioning.
            assert static2 >= 1.5 * elastic, (static2, elastic)
            # And it never loses to *any* static shard count, including
            # the hot-key-blind keyed map at full scale.
            for name, (result, _) in skew.items():
                if name != "elastic":
                    assert result.simulated_parallel_seconds >= elastic, name

    record(benchmark, check)


def test_reshard_uniform_never_loses(results, benchmark):
    def check():
        uniform = results["uniform"]
        print_table(
            "Elastic resharding — uniform (skew-free) TC"
            + (" (tiny)" if TINY else ""),
            HEADER,
            _table_rows(uniform, f"static{PROVISIONED}"),
        )
        assert len({n_rows for _, n_rows in uniform.values()}) == 1
        if not TINY:
            elastic = uniform["elastic"][0].simulated_parallel_seconds
            for name, (result, _) in uniform.items():
                if name != "elastic":
                    assert result.simulated_parallel_seconds >= elastic, name

    record(benchmark, check)


def test_reshard_cost_gate(results, benchmark):
    def check():
        gated = results["gated_controller"]
        assert gated.plans, "zero-horizon controller never planned"
        assert not any(plan.migrate for plan in gated.plans)
        assert gated.engine.shards == PROVISIONED
        declined = gated.metrics.counter("reshard.declined").value
        assert declined == len(gated.plans)

    record(benchmark, check)


def test_reshard_benchmark_elastic(benchmark):
    def run():
        run_elastic(skewed_edges())

    benchmark.pedantic(run, rounds=1, iterations=1)

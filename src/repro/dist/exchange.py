"""Exchange (shuffle) operators between shard devices.

Distributed query engines re-partition intermediate results between
pipeline stages; here the unit of exchange is the per-iteration delta of
one predicate.  Two collectives cover the sharded semi-naive loop:

* :meth:`ExchangeOperator.shuffle` — hash-routes every locally derived
  row to its owner shard.  Rows that stay local are free; every
  cross-shard row is charged to the *sending* device's exchange model
  (``latency + bytes / exchange_bandwidth`` of simulated time), so the
  cost of poor partitioning is visible in the merged profile.
* :meth:`ExchangeOperator.all_gather` — after the owner ⊕-merges its
  partition, the deduplicated delta is broadcast so every shard can fold
  the identical global delta into its replica of the closure.  Each
  owner is charged once per peer.

Both return plain :class:`~repro.runtime.table.Table` objects; all cost
accounting goes through :class:`~repro.gpu.device.VirtualDevice`
counters, never the host clock.
"""

from __future__ import annotations

from .partition import ShardMap
from ..gpu.device import VirtualDevice
from ..provenance.base import Provenance
from ..runtime.table import Table


class ExchangeOperator:
    """Shuffle/broadcast collectives over a fixed pool of shard devices."""

    def __init__(self, partitioner: ShardMap, devices: list[VirtualDevice]):
        if partitioner.n_shards != len(devices):
            raise ValueError(
                f"partitioner has {partitioner.n_shards} shards but "
                f"{len(devices)} devices were supplied"
            )
        self.partitioner = partitioner
        self.devices = devices

    @property
    def n_shards(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------

    def shuffle(
        self,
        local_tables: list[Table],
        dtypes,
        provenance: Provenance,
        predicate: str | None = None,
    ) -> list[Table]:
        """Re-partition per-shard delta tables to their owner shards.

        ``local_tables[s]`` holds the rows shard ``s`` derived this
        iteration; the result's entry ``t`` concatenates every row owned
        by shard ``t`` (source-shard order, so the routing is
        deterministic).  Cross-shard rows charge the sender's exchange
        cost model.  ``predicate`` lets a keyed :class:`ShardMap` apply
        its per-predicate key columns and hot-key splits to the routing.
        """
        n = self.n_shards
        inbound: list[list[Table]] = [[] for _ in range(n)]
        for source, table in enumerate(local_tables):
            if table.n_rows == 0:
                continue
            for target, part in enumerate(self.partitioner.split(table, predicate)):
                if part.n_rows == 0:
                    continue
                if target != source:
                    self.devices[source].record_exchange(part.nbytes())
                inbound[target].append(part)
        return [
            Table.concat(parts, dtypes, provenance) for parts in inbound
        ]

    def all_gather(
        self,
        owner_tables: list[Table],
        dtypes,
        provenance: Provenance,
    ) -> Table:
        """Broadcast each owner's merged delta to every peer and return
        the concatenated global delta (identical on all shards)."""
        n = self.n_shards
        for owner, table in enumerate(owner_tables):
            if table.n_rows == 0:
                continue
            nbytes = table.nbytes()
            for peer in range(n):
                if peer != owner:
                    self.devices[owner].record_exchange(nbytes)
        return Table.concat(list(owner_tables), dtypes, provenance)

"""The maintenance tick path: materialized views on the serve clock.

A :class:`StreamScheduler` drives registered
(:class:`~repro.stream.view.MaterializedView`, window) pairs at fixed
tick periods of **simulated** serve-clock seconds, on the same
:class:`~repro.dist.pool.DevicePool` and
:class:`~repro.serve.metrics.MetricsRegistry` the request
:class:`~repro.serve.scheduler.Scheduler` uses.  Maintenance is real
work: each tick's run executes through a warm per-program
:class:`~repro.runtime.session.LobsterSession` step pinned to the chosen
pool device, and the device is busy (in simulated time) for the run's
modeled :attr:`~repro.runtime.engine.ExecutionResult.service_seconds` —
so co-located request traffic sees maintenance occupancy and vice versa
(hand the ``busy_until`` horizons back and forth between the two
schedulers' ``run`` calls).

Backpressure follows the admission layer's philosophy — overload causes
explicit, accounted-for degradation, never silent drift: when every
device is busy at a tick's scheduled time the tick starts late (the
``stream.tick_lag_s`` histogram records by how much), and once the lag
exceeds ``max_lag_ticks`` periods the scheduler *coalesces* — it merges
the backlog of due window deltas into one net delta
(:meth:`~repro.stream.window.TickDelta.merged_with`) and applies them in
a single maintain pass, counting the skipped passes in
``stream.ticks_coalesced``.  Results are unaffected (the net delta is
equivalent by construction); only the intermediate view deltas collapse.

Everything is counter accounting on a seeded stream, so a run's latency
histograms replay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .metrics import MetricsRegistry
from .scheduler import seed_free_at
from ..dist.pool import DevicePool
from ..errors import LobsterError
from ..obs import NULL_TRACER, Tracer
from ..runtime.session import LobsterSession
from ..stream.view import MaterializedView, ViewDelta
from ..stream.window import TickDelta, Window

if TYPE_CHECKING:  # circular-import guard (recovery imports stream)
    from ..recovery import RecoveryManager

__all__ = ["StreamScheduler", "StreamReport"]


@dataclass
class RegisteredStream:
    """One view + its feed on the tick clock."""

    name: str
    view: MaterializedView
    feed: Window
    period_s: float
    #: Serve-clock time of the next scheduled tick.
    next_due_s: float = 0.0
    ticks_applied: int = 0


@dataclass
class StreamReport:
    """Aggregate outcome of one :meth:`StreamScheduler.run` drain."""

    #: Every applied ViewDelta, in application order.
    deltas: list[ViewDelta]
    #: The scheduler's registry (cumulative across drains).
    metrics: MetricsRegistry
    #: Serve-clock time the last maintenance run finished.
    makespan_s: float
    #: Per-device busy horizons after this drain — feed into the next
    #: request-scheduler ``run(busy_until=...)`` (or back into this one).
    busy_until: list[float] = field(default_factory=list)
    #: Maintain passes executed / source ticks covered / passes saved by
    #: coalescing (``ticks == passes + coalesced``).
    passes: int = 0
    ticks: int = 0
    coalesced: int = 0

    @property
    def maintained_fraction(self) -> float:
        """Fraction of passes that maintained in place (vs fell back)."""
        if not self.deltas:
            return 0.0
        return sum(1 for delta in self.deltas if delta.maintained) / len(self.deltas)


class StreamScheduler:
    """Clock-driven maintenance ticks over a shared device pool."""

    def __init__(
        self,
        pool: DevicePool | None = None,
        *,
        n_devices: int = 1,
        metrics: MetricsRegistry | None = None,
        max_lag_ticks: float = 4.0,
        durability: "RecoveryManager | None" = None,
        tracer: Tracer | None = None,
        elastic=None,
    ):
        """Share ``pool`` and ``metrics`` with a request
        :class:`~repro.serve.scheduler.Scheduler` to co-locate
        maintenance and serving; ``max_lag_ticks`` is the backlog (in
        tick periods) past which due ticks coalesce into one pass.
        ``durability`` (a :class:`~repro.recovery.RecoveryManager`)
        routes every applied tick through the WAL + checkpoint path, so
        a restarted process resumes mid-stream via
        :func:`repro.recovery.recover`.  ``tracer`` (a
        :class:`~repro.obs.Tracer`, sharable with the request scheduler)
        records per-tick span timelines — the maintain run tree plus WAL
        append / checkpoint swap events when ``durability`` is set.
        ``elastic`` (an :class:`~repro.serve.elastic.ElasticController`,
        sharable with a request scheduler) gets a
        :meth:`~repro.serve.elastic.ElasticController.maybe_reshard`
        probe after every completed tick — the between-micro-batches
        seam where its managed engine's shard set may grow, shrink, or
        split hot keys without ever interrupting in-flight work."""
        self.pool = pool or DevicePool(n_devices, policy="least-loaded")
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self.max_lag_ticks = max_lag_ticks
        self.durability = durability
        self.elastic = elastic
        self.streams: list[RegisteredStream] = []
        self._sessions: dict[str, LobsterSession] = {}

    # ------------------------------------------------------------------

    def register(
        self,
        view: MaterializedView,
        feed: Window,
        period_s: float = 1e-3,
        name: str | None = None,
    ) -> RegisteredStream:
        """Schedule ``feed``'s deltas into ``view`` every ``period_s``
        simulated seconds.  The view's engine must be single-device
        (sharded engines split one query across their own pool — they
        cannot also share this one)."""
        if period_s <= 0:
            raise LobsterError("tick period must be > 0 simulated seconds")
        if view.engine._use_sharded():
            raise LobsterError(
                "the stream scheduler runs maintenance on its shared "
                "DevicePool; a sharded engine brings its own shard pool — "
                "maintain it with shards=1 (or drive the view directly)"
            )
        if view.metrics is None:
            # The view's per-tick instruments (maintain latency, changed
            # rows, fallbacks) land in the shared registry, next to the
            # request path's.
            view.metrics = self.metrics
        entry = RegisteredStream(
            name=name or view.name, view=view, feed=feed, period_s=period_s
        )
        if self.durability is not None and entry.name not in self.durability.streams:
            self.durability.register(entry.name, view, feed)
        self.streams.append(entry)
        self.metrics.gauge("stream.registered_views").set(len(self.streams))
        return entry

    def _session_for(self, view: MaterializedView) -> LobsterSession:
        """One warm session per execution-compatibility key
        (:attr:`LobsterEngine.program_key`), shared across views of the
        same program — and with the micro-batch groups of a request
        scheduler keyed the same way."""
        key = view.engine.program_key
        session = self._sessions.get(key)
        if session is None:
            session = LobsterSession(
                view.engine,
                pool=self.pool,
                metrics=self.metrics,
                tracer=self.tracer if self.tracer is not NULL_TRACER else None,
            )
            self._sessions[key] = session
        return session

    # ------------------------------------------------------------------

    def run(
        self,
        n_ticks: int,
        *,
        start_s: float = 0.0,
        busy_until: list[float] | None = None,
    ) -> StreamReport:
        """Advance every registered stream ``n_ticks`` source ticks on
        the serve clock, starting at ``start_s``; ``busy_until`` carries
        device occupancy in from a preceding request drain."""
        if not self.streams:
            raise LobsterError("no streams registered")
        free_at = seed_free_at(busy_until, self.pool)
        for entry in self.streams:
            entry.next_due_s = start_s
            entry.ticks_applied = 0  # per-run budget; feeds keep their state
        report = StreamReport(deltas=[], metrics=self.metrics, makespan_s=start_s)

        while True:
            due = [
                entry for entry in self.streams if entry.ticks_applied < n_ticks
            ]
            if not due:
                break
            entry = min(due, key=lambda e: (e.next_due_s, e.name))
            # The device frees earliest; the tick starts no earlier than
            # its schedule.
            device_index = min(range(len(free_at)), key=lambda i: (free_at[i], i))
            start = max(entry.next_due_s, free_at[device_index])
            lag = start - entry.next_due_s

            # Coalesce the backlog once lag exceeds the bound: every tick
            # already due at `start` merges into one net delta.
            delta = entry.feed.advance()
            applied = 1
            entry.next_due_s += entry.period_s
            if lag > self.max_lag_ticks * entry.period_s:
                while (
                    entry.ticks_applied + applied < n_ticks
                    and entry.next_due_s <= start
                ):
                    delta = delta.merged_with(entry.feed.advance())
                    applied += 1
                    entry.next_due_s += entry.period_s
            session = self._session_for(entry.view)
            tracer = self.tracer
            tick_span = None
            if tracer.enabled:
                tick_span = tracer.start(
                    "stream.tick",
                    t=start,
                    track=f"stream/{entry.name}",
                    stream=entry.name,
                    tick=entry.feed.next_tick,
                    ticks=applied,
                    device=device_index,
                    lag_s=round(lag, 9),
                )
                # Pin the cursor so the maintain run's span tree anchors
                # at this tick's start on the serve clock.
                tracer.set_time(start)
            runner = lambda db: session.run_batch(  # noqa: E731
                [db],
                device_index=device_index,
                retain=False,
                span_parent=tick_span,
            )[0]
            if self.durability is not None:
                if tick_span is not None:
                    self.durability.tracer = tracer
                    self.durability.trace_parent = tick_span
                try:
                    view_delta = self.durability.apply(
                        entry.name, delta, runner=runner
                    )
                finally:
                    if tick_span is not None:
                        self.durability.tracer = NULL_TRACER
                        self.durability.trace_parent = None
            else:
                view_delta = entry.view.apply(delta, runner=runner)
            finish = start + view_delta.service_seconds
            if tick_span is not None:
                tick_span.attrs["maintained"] = view_delta.maintained
                if view_delta.fallback is not None:
                    tick_span.attrs["fallback"] = view_delta.fallback
                tracer.finish(tick_span, finish)
            free_at[device_index] = finish
            entry.ticks_applied += applied
            if self.elastic is not None:
                # Ticks are the stream path's micro-batch boundaries:
                # the controller may resize its managed engine's shard
                # set here, between passes, never mid-tick.
                self.elastic.maybe_reshard(finish)

            report.deltas.append(view_delta)
            report.passes += 1
            report.ticks += applied
            report.coalesced += applied - 1
            report.makespan_s = max(report.makespan_s, finish)
            self.metrics.counter("stream.passes").inc()
            self.metrics.counter("stream.source_ticks").inc(applied)
            if applied > 1:
                self.metrics.counter("stream.ticks_coalesced").inc(applied - 1)
            self.metrics.histogram("stream.tick_lag_s").observe(lag)
            self.metrics.gauge("stream.live_rows").set(
                sum(e.feed.live_count for e in self.streams)
            )

        report.busy_until = list(free_at)
        self.metrics.gauge("stream.makespan_s").set(report.makespan_s)
        return report
